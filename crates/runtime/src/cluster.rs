//! The cluster facade: public API over the node workers.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::transport::channel::{ChannelMesh, MeshConfig};
use crate::transport::{Transport, TransportError};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError};
use oml_check::event::{EventKind, ReleaseCause, TraceEvent, CLIENT_PROCESS};
use oml_core::alliance::AllianceRegistry;
use oml_core::attach::{AttachOutcome, AttachmentGraph, AttachmentMode};
use oml_core::error::AttachError;
use oml_core::ids::{AllianceId, BlockId, NodeId, ObjectId};
use oml_core::object::Mobility;
use oml_core::policy::{MovePolicy, PolicyKind};

use crate::error::RuntimeError;
use crate::fault::{self, Delivery, FaultInjector, FaultPlan};
use crate::message::{Envelope, Message, MAX_HOPS};
use crate::node::NodeWorker;
use crate::object::{Delinearizer, MobileObject, TypeRegistry};
use crate::recovery::{
    preference_order, Admission, DetectorConfig, NodeHealth, PendingRefresh, RecoveryState,
    ReplicaCheckpoint, ReplicationInfo,
};
use crate::schedule::{FreeRun, ScheduleSource, SendAction};
use crate::store::{CheckpointStore, FsyncPolicy};
use crate::trace::{OrderedMutex, OrderedRwLock, TraceCollector};
use crate::wire::CheckpointFrame;

/// Monotone activity counters, readable while the cluster runs.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) invocations: AtomicU64,
    pub(crate) moves_granted: AtomicU64,
    pub(crate) moves_denied: AtomicU64,
    pub(crate) objects_migrated: AtomicU64,
    pub(crate) forwards: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) leases_expired: AtomicU64,
    pub(crate) suspicions: AtomicU64,
    pub(crate) false_suspicions: AtomicU64,
    pub(crate) reinstantiations: AtomicU64,
    pub(crate) fenced_stale: AtomicU64,
    pub(crate) breaker_opens: AtomicU64,
    pub(crate) checkpoint_refreshes: AtomicU64,
    pub(crate) quorum_refreshes: AtomicU64,
    pub(crate) quorum_refresh_failures: AtomicU64,
    pub(crate) repairs: AtomicU64,
}

/// A point-in-time snapshot of a cluster's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterStats {
    /// Invocations executed (at any node).
    pub invocations: u64,
    /// Move-requests granted.
    pub moves_granted: u64,
    /// Move-requests denied.
    pub moves_denied: u64,
    /// Objects shipped between nodes (closure members count individually).
    pub objects_migrated: u64,
    /// Messages forwarded because their object had moved on.
    pub forwards: u64,
    /// Blocking client calls whose deadline elapsed (per attempt).
    pub timeouts: u64,
    /// Invocation attempts re-sent after a timeout.
    pub retries: u64,
    /// Placement locks released by lease expiry (the recovery path).
    pub leases_expired: u64,
    /// Nodes the failure detector began suspecting (missed beats or
    /// partitions). Zero without a detector.
    pub suspicions: u64,
    /// Suspicions that were later revoked (the node was merely slow or
    /// partitioned and came back).
    pub false_suspicions: u64,
    /// Objects reinstantiated from their checkpoints after their host was
    /// declared dead.
    pub reinstantiations: u64,
    /// Messages rejected by epoch fencing (stale sender incarnations and
    /// stale object-epoch installs).
    pub fenced_stale: u64,
    /// Circuit-breaker open transitions (suspicion, death, failed probes).
    pub breaker_opens: u64,
    /// Checkpoint refreshes issued to the replica sets (create-time seeding
    /// is not counted — it writes synchronously, without a quorum round).
    pub checkpoint_refreshes: u64,
    /// Refreshes that collected a write quorum of replica acks.
    pub quorum_refreshes: u64,
    /// Refreshes superseded before reaching their quorum (dropped puts or
    /// acks, partitioned replicas) — the durability-margin warning light.
    pub quorum_refresh_failures: u64,
    /// Checkpoint copies re-sent by the anti-entropy repair sweep.
    pub repairs: u64,
}

/// One object's durability margin, from [`Cluster::checkpoint_health`]:
/// how many live replicas hold its passive copy and how stale they may be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointHealth {
    /// The object.
    pub object: ObjectId,
    /// Live (non-dead, non-crashed) nodes currently holding a copy.
    pub replicas: u32,
    /// Milliseconds since the last refresh (or creation) was issued.
    pub refresh_age_ms: u64,
    /// Freshest `(object_epoch, seq)` known to have reached a write quorum;
    /// `None` until the first quorum-acknowledged refresh completes.
    pub quorum: Option<(u64, u64)>,
}

/// The cluster's notion of lease time: wall-clock milliseconds since build,
/// or a hand-advanced counter for deterministic tests.
pub(crate) enum RuntimeClock {
    Wall(Instant),
    Manual(AtomicU64),
}

/// One object stranded by a crashed worker: its host node, identity, live
/// instance and object epoch at stash time, parked until that node restarts.
/// A restart only reclaims entries whose epoch is still current — an object
/// reinstantiated elsewhere while the node was down stays where it is.
pub(crate) type StashedObject = (NodeId, ObjectId, Box<dyn MobileObject>, u64);

/// State shared by every node worker and the cluster facade.
pub(crate) struct Shared {
    /// The in-process transport: bounded per-node inboxes behind the
    /// [`Transport`] seam. The mesh (not the worker) owns each channel, so
    /// queued messages survive a worker crash and are drained by the
    /// restarted incarnation — the pre-trait behaviour, preserved.
    mesh: ChannelMesh<Envelope>,
    directory: OrderedRwLock<HashMap<ObjectId, NodeId>>,
    mobility: OrderedRwLock<HashMap<ObjectId, Mobility>>,
    pub(crate) policy: OrderedMutex<Box<dyn MovePolicy>>,
    pub(crate) attachments: OrderedMutex<AttachmentGraph>,
    pub(crate) alliances: OrderedMutex<AllianceRegistry>,
    pub(crate) registry: TypeRegistry,
    pub(crate) counters: Counters,
    pub(crate) injector: FaultInjector,
    /// The scheduling seam: decides message hand-off timing and worker
    /// ticks. [`FreeRun`] unless a test harness installed a custom source.
    pub(crate) schedule: Arc<dyn ScheduleSource>,
    /// Objects stranded by a crashed worker, waiting for its restart.
    pub(crate) stash: OrderedMutex<Vec<StashedObject>>,
    /// The crash-recovery subsystem; `None` unless a failure detector was
    /// configured, in which case the runtime behaves exactly as before.
    pub(crate) recovery: Option<RecoveryState>,
    pub(crate) clock: RuntimeClock,
    /// Protocol trace collection (disabled unless built with
    /// [`ClusterBuilder::trace`]).
    pub(crate) trace: TraceCollector,
    call_timeout: Duration,
    invoke_retries: u32,
    /// SplitMix64 state for retry-backoff jitter (seeded from the fault
    /// plan, so even the jitter is reproducible).
    jitter: OrderedMutex<u64>,
    next_object: AtomicU32,
    next_block: AtomicU32,
    /// Shutdown has been initiated: new client operations are refused, but
    /// sends still flow so queued end-requests can be flushed.
    closing: AtomicBool,
    /// Workers have been joined: sends now fail with `ShuttingDown` instead
    /// of silently queueing into dead channels.
    down: AtomicBool,
}

impl Shared {
    /// Routes one message to `to`, applying the fault plan. `from` is the
    /// sending node together with its incarnation epoch (stamped on the
    /// envelope for fencing), or `None` for the client facade.
    ///
    /// Control messages (invocations, move-requests, end-requests) are
    /// subject to drops, duplicates, delays and partitions; state transfer
    /// (`Create`/`Install`/`Surrender`) and control sentinels are always
    /// reliable — see [`crate::fault`] for the model.
    ///
    /// A faithfully *lost* message still returns `Ok` (the sender cannot
    /// observe a drop — that is what deadlines are for); `Err(ShuttingDown)`
    /// means the cluster's workers are gone and the message can never be
    /// processed.
    pub(crate) fn send_from(
        &self,
        from: Option<(NodeId, u64)>,
        to: NodeId,
        msg: Message,
    ) -> Result<(), RuntimeError> {
        if self.down.load(Ordering::Acquire) {
            return Err(RuntimeError::ShuttingDown);
        }
        let (from_raw, epoch) = from.map_or((fault::CLIENT, 0), |(n, e)| (n.as_u32(), e));
        let is_checkpoint = matches!(
            msg,
            Message::CheckpointPut { .. } | Message::CheckpointAck { .. }
        );
        if is_checkpoint && from_raw != fault::CLIENT {
            // replica traffic between nodes has its own (silent) decision
            // stream: drops and duplicates, never delays. Client-originated
            // checkpoint traffic (creation seeding, repair) is reliable.
            return match self.injector.decide_checkpoint(from_raw, to.as_u32()) {
                Delivery::Drop => Ok(()),
                Delivery::Deliver { copies, .. } => {
                    let mut msgs = Vec::with_capacity(copies as usize);
                    if copies > 1 {
                        if let Some(dup) = clone_control(&msg) {
                            msgs.push(self.trace_envelope(from_raw, epoch, to, dup));
                        }
                    }
                    msgs.push(self.trace_envelope(from_raw, epoch, to, msg));
                    for m in msgs {
                        let _ = self.mesh.send(to.as_u32(), m);
                    }
                    Ok(())
                }
            };
        }
        let faultable = matches!(
            msg,
            Message::Invoke { .. } | Message::MoveRequest { .. } | Message::EndRequest { .. }
        );
        if !faultable {
            let env = self.trace_envelope(from_raw, epoch, to, msg);
            return self.mesh.send(to.as_u32(), env).map_err(map_mesh_err);
        }
        let is_end = matches!(msg, Message::EndRequest { .. });
        match self
            .injector
            .decide(from_raw, to.as_u32(), is_end, &format!("{msg:?}"))
        {
            Delivery::Drop => Ok(()),
            Delivery::Deliver { copies, delay_ms } => {
                // the scheduling seam sees every surviving control message;
                // its delay composes with the fault plan's by taking the max
                let delay_ms = match self.schedule.on_send(from_raw, to) {
                    SendAction::Deliver => delay_ms,
                    SendAction::Delay(d) => {
                        delay_ms.max(u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
                    }
                };
                let mut msgs = Vec::with_capacity(copies as usize);
                if copies > 1 {
                    if let Some(dup) = clone_control(&msg) {
                        msgs.push(self.trace_envelope(from_raw, epoch, to, dup));
                    }
                }
                msgs.push(self.trace_envelope(from_raw, epoch, to, msg));
                let tx = self.mesh.sender(to.as_u32());
                if delay_ms > 0 {
                    // deliver later from a detached thread; a message landing
                    // after shutdown sits in a queue nobody reads — harmless
                    std::thread::spawn(move || {
                        std::thread::sleep(Duration::from_millis(delay_ms));
                        for m in msgs {
                            let _ = tx.send(m);
                        }
                    });
                } else {
                    for m in msgs {
                        let _ = tx.send(m);
                    }
                }
                Ok(())
            }
        }
    }

    /// Wraps a message for the wire, assigning it a trace id and emitting
    /// the matching `Send` event in the sender's program order. A duplicated
    /// message passes through twice and gets two ids — two physical copies,
    /// two sends, exactly what the happens-before construction expects.
    fn trace_envelope(&self, from: u32, epoch: u64, to: NodeId, msg: Message) -> Envelope {
        if !self.trace.is_enabled() {
            let mut env = Envelope::untraced(msg);
            env.from = from;
            env.epoch = epoch;
            return env;
        }
        let msg_id = self.trace.next_msg_id();
        self.trace.emit(
            from,
            EventKind::Send {
                msg_id,
                to: to.as_u32(),
                desc: format!("{msg:?}"),
            },
        );
        Envelope {
            trace_id: msg_id,
            from,
            epoch,
            msg,
        }
    }

    pub(crate) fn directory_get(&self, object: ObjectId) -> Option<NodeId> {
        self.directory.read().get(&object).copied()
    }

    pub(crate) fn directory_set(&self, object: ObjectId, node: NodeId) {
        self.directory.write().insert(object, node);
    }

    pub(crate) fn is_movable(&self, object: ObjectId) -> bool {
        self.mobility
            .read()
            .get(&object)
            .copied()
            .unwrap_or_default()
            .is_movable()
    }

    /// Milliseconds on the cluster's lease clock.
    pub(crate) fn now_ms(&self) -> u64 {
        match &self.clock {
            RuntimeClock::Wall(epoch) => epoch.elapsed().as_millis() as u64,
            RuntimeClock::Manual(t) => t.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn is_closing(&self) -> bool {
        self.closing.load(Ordering::Acquire)
    }

    fn next_jitter_ms(&self, bound_ms: u64) -> u64 {
        let mut state = self.jitter.lock();
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = *state;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x % bound_ms.max(1)
    }

    // ---- crash-recovery plumbing (all no-ops without a detector) ----

    /// Whether the crash-recovery subsystem is active at all — workers use
    /// this to skip checkpoint linearization entirely when it is not.
    pub(crate) fn detector_enabled(&self) -> bool {
        self.recovery.is_some()
    }

    /// Whether epoch fencing is active.
    pub(crate) fn fenced(&self) -> bool {
        self.recovery.as_ref().is_some_and(|r| r.fenced)
    }

    /// The current incarnation of `node` (raw id); 1 without a detector.
    pub(crate) fn incarnation(&self, node: u32) -> u64 {
        self.recovery
            .as_ref()
            .map_or(1, |r| r.incarnation(node as usize))
    }

    /// Records a heartbeat from incarnation `epoch` of `node`.
    pub(crate) fn beat(&self, node: NodeId, epoch: u64) {
        if let Some(rec) = &self.recovery {
            rec.beat(node.index(), epoch, self.now_ms());
        }
    }

    /// The object's current epoch (0 without a detector or before any
    /// reinstantiation).
    pub(crate) fn object_epoch(&self, object: ObjectId) -> u64 {
        self.recovery.as_ref().map_or(0, |r| {
            r.object_epochs.read().get(&object).copied().unwrap_or(0)
        })
    }

    /// The object's current replica-set targets: the first `k` available
    /// nodes in its placement preference order.
    fn replica_targets(&self, object: ObjectId, home: NodeId) -> Vec<NodeId> {
        let Some(rec) = &self.recovery else {
            return Vec::new();
        };
        preference_order(object, home, self.mesh.peers() as usize)
            .into_iter()
            .filter(|n| rec.replica_available(n.index()))
            .take(rec.replica_k)
            .collect()
    }

    /// Seeds the replicated checkpoint at creation: records the home node
    /// and writes the birth state synchronously into the replica set's
    /// stores (creation blocks on the Create reply anyway, so there is no
    /// quorum round to wait for — every replica starts at `(0, 0)`).
    pub(crate) fn checkpoint_init(
        &self,
        object: ObjectId,
        home: NodeId,
        type_tag: String,
        state: Bytes,
    ) {
        let Some(rec) = &self.recovery else {
            return;
        };
        let now = self.now_ms();
        rec.replication.lock().insert(
            object,
            ReplicationInfo {
                home,
                seq: 0,
                pending: None,
                last_quorum: None,
                last_refresh_at_ms: now,
            },
        );
        let frame = CheckpointFrame {
            type_tag,
            state,
            object_epoch: 0,
            seq: 0,
        };
        for target in self.replica_targets(object, home) {
            self.store_replica(target, object, &frame);
        }
    }

    /// Refreshes the replicated checkpoint (install / end / lease events —
    /// the points where a consistent linearized copy is in hand anyway):
    /// assigns the next refresh sequence, fans a `CheckpointPut` out to the
    /// replica set and starts counting acks against a majority write quorum.
    /// `host` is the node holding the live object (it stores its copy
    /// locally and self-acks; an unacked previous refresh is superseded and
    /// counted as a quorum failure).
    pub(crate) fn checkpoint_refresh(
        &self,
        object: ObjectId,
        type_tag: &str,
        state: Bytes,
        host: NodeId,
        host_epoch: u64,
    ) {
        let Some(rec) = &self.recovery else {
            return;
        };
        let object_epoch = self.object_epoch(object);
        let now = self.now_ms();
        let (seq, targets) = {
            let mut repl = rec.replication.lock();
            let Some(info) = repl.get_mut(&object) else {
                return; // detector configured after the object was created
            };
            if info.pending.take().is_some() {
                self.counters
                    .quorum_refresh_failures
                    .fetch_add(1, Ordering::Relaxed);
            }
            info.seq += 1;
            let seq = info.seq;
            let targets = self.replica_targets(object, info.home);
            if targets.is_empty() {
                return;
            }
            info.pending = Some(PendingRefresh {
                object_epoch,
                seq,
                quorum: targets.len() / 2 + 1,
                acked: HashSet::new(),
            });
            info.last_refresh_at_ms = now;
            (seq, targets)
        };
        self.counters
            .checkpoint_refreshes
            .fetch_add(1, Ordering::Relaxed);
        let frame = CheckpointFrame {
            type_tag: type_tag.to_owned(),
            state,
            object_epoch,
            seq,
        };
        let encoded = frame.encode();
        for target in targets {
            if target == host {
                // the host's own store needs no message round-trip
                self.store_replica(target, object, &frame);
                self.checkpoint_ack(object, object_epoch, seq, target, host.as_u32());
            } else {
                let _ = self.send_from(
                    Some((host, host_epoch)),
                    target,
                    Message::CheckpointPut {
                        object,
                        frame: encoded.clone(),
                    },
                );
            }
        }
    }

    /// Writes `frame` into `at`'s replica store if it is fresher than the
    /// copy already there (lexicographic `(object_epoch, seq)`); returns
    /// whether it was applied.
    pub(crate) fn store_replica(
        &self,
        at: NodeId,
        object: ObjectId,
        frame: &CheckpointFrame,
    ) -> bool {
        let Some(rec) = &self.recovery else {
            return false;
        };
        let (applied, wal) = {
            let mut stores = rec.replica_stores.lock();
            let store = &mut stores[at.index()];
            match store.get(object) {
                Some(existing) if existing.version() >= (frame.object_epoch, frame.seq) => {
                    (false, None)
                }
                _ => {
                    let compactions = store.wal_stats().compactions;
                    // the put (and its fsync, per policy) completes before
                    // any ack is sent — acks never outrun durability
                    match store.put(
                        object,
                        ReplicaCheckpoint {
                            type_tag: frame.type_tag.clone(),
                            state: frame.state.clone(),
                            object_epoch: frame.object_epoch,
                            seq: frame.seq,
                        },
                    ) {
                        Ok(durability) => {
                            let wal = store.durable_backed().then(|| {
                                let stats = store.wal_stats();
                                let compacted = (stats.compactions > compactions)
                                    .then_some((stats.generation, store.len() as u64));
                                (durability.is_durable(), compacted)
                            });
                            (true, wal)
                        }
                        Err(_) => (false, None), // a failed write is no write
                    }
                }
            }
        };
        if let Some((durable, compacted)) = wal {
            self.trace.emit(
                at.as_u32(),
                EventKind::WalAppended {
                    node: at.as_u32(),
                    object,
                    object_epoch: frame.object_epoch,
                    seq: frame.seq,
                    durable,
                },
            );
            if let Some((generation, records)) = compacted {
                self.trace.emit(
                    at.as_u32(),
                    EventKind::SnapshotCompacted {
                        node: at.as_u32(),
                        generation,
                        records,
                    },
                );
            }
        }
        if applied {
            self.trace.emit(
                at.as_u32(),
                EventKind::CheckpointStored {
                    object,
                    replica: at,
                    object_epoch: frame.object_epoch,
                    seq: frame.seq,
                },
            );
        }
        applied
    }

    /// Applies an incoming `CheckpointPut` at node `at` and (for node-to-
    /// node puts) acks back to the sender. Undecodable frames are dropped;
    /// with fencing, a put linearized under a superseded object epoch is
    /// *quietly* ignored — it is not a protocol violation, just a refresh
    /// that lost a race with a reinstantiation, and the repair sweep will
    /// re-replicate under the current epoch.
    pub(crate) fn apply_checkpoint_put(
        &self,
        at: NodeId,
        at_epoch: u64,
        object: ObjectId,
        frame: &Bytes,
        from: u32,
        ack: bool,
    ) {
        if self.recovery.is_none() {
            return;
        }
        let Ok(frame) = CheckpointFrame::decode(frame) else {
            return;
        };
        if self.fenced() && frame.object_epoch < self.object_epoch(object) {
            return;
        }
        self.store_replica(at, object, &frame);
        // re-ack even when the copy was not fresher: the sender may be
        // retrying a refresh whose previous ack was lost
        if ack && from != fault::CLIENT {
            let _ = self.send_from(
                Some((at, at_epoch)),
                NodeId::new(from),
                Message::CheckpointAck {
                    object,
                    object_epoch: frame.object_epoch,
                    seq: frame.seq,
                    replica: at,
                },
            );
        }
    }

    /// Counts one replica's ack toward the pending refresh's write quorum.
    /// Acks are deduplicated by replica id (duplicated or re-sent acks
    /// count once) and acks for any other `(object_epoch, seq)` than the
    /// pending write are ignored.
    pub(crate) fn checkpoint_ack(
        &self,
        object: ObjectId,
        object_epoch: u64,
        seq: u64,
        replica: NodeId,
        process: u32,
    ) {
        let Some(rec) = &self.recovery else {
            return;
        };
        let quorum_reached = {
            let mut repl = rec.replication.lock();
            let Some(info) = repl.get_mut(&object) else {
                return;
            };
            let Some(pending) = info.pending.as_mut() else {
                return;
            };
            if pending.object_epoch != object_epoch || pending.seq != seq {
                return;
            }
            if !pending.acked.insert(replica.as_u32()) {
                return; // duplicate ack: already counted
            }
            let quorum = pending.quorum;
            self.trace.emit(
                process,
                EventKind::CheckpointAcked {
                    object,
                    object_epoch,
                    seq,
                    replica,
                    quorum: quorum as u32,
                },
            );
            if pending.acked.len() >= quorum {
                info.pending = None;
                info.last_quorum = Some((object_epoch, seq));
                true
            } else {
                false
            }
        };
        if quorum_reached {
            self.counters
                .quorum_refreshes
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The circuit breaker's verdict on calling `node`: `Err(NodeDown)` to
    /// fail fast, `Ok` to proceed (possibly as the half-open probe — report
    /// the outcome with [`Shared::settle_call`]).
    pub(crate) fn admit(&self, node: NodeId) -> Result<(), RuntimeError> {
        if let Some(rec) = &self.recovery {
            if matches!(rec.admit(node.index()), Admission::FailFast) {
                return Err(RuntimeError::NodeDown(node));
            }
        }
        Ok(())
    }

    /// Reports a call's transport outcome to the breaker (only a half-open
    /// probe actually transitions), counting and tracing a reopen.
    pub(crate) fn settle_call(&self, node: NodeId, success: bool) {
        if let Some(rec) = &self.recovery {
            if rec.settle(node.index(), success) {
                self.counters.breaker_opens.fetch_add(1, Ordering::Relaxed);
                self.trace
                    .emit(CLIENT_PROCESS, EventKind::BreakerOpen { node });
            }
        }
    }

    /// Marks the node's worker as gone (crash stash path).
    pub(crate) fn mark_crashed(&self, node: NodeId) {
        if let Some(rec) = &self.recovery {
            rec.mark_crashed(node.index());
        }
    }

    /// Re-admits a restarting node under a fresh incarnation: marks it
    /// alive and healthy and gives an open breaker a probe slot. Returns the
    /// new incarnation the respawned worker must stamp its messages with.
    pub(crate) fn rejoin(&self, node: NodeId) -> u64 {
        let Some(rec) = &self.recovery else {
            return 1;
        };
        // the epoch lock serializes this against a concurrent declare-dead:
        // whichever runs second sees the other's verdict and stays consistent
        let _guard = rec.epoch_lock.lock();
        let epoch = rec.bump_incarnation(node.index());
        rec.mark_alive(node.index(), self.now_ms());
        rec.set_health(node.index(), NodeHealth::Up);
        rec.half_open_breaker(node.index());
        epoch
    }

    /// Refreshes every live node's heartbeat to the current clock — called
    /// when the manual clock jumps, standing in for the beats the workers
    /// would have produced continuously across the (instantaneous) jump.
    pub(crate) fn refresh_beats(&self) {
        if let Some(rec) = &self.recovery {
            rec.refresh_alive_beats(self.now_ms());
        }
    }

    /// One failure-detector sweep: suspects silent or partitioned nodes,
    /// clears suspicions (and half-opens breakers) when beats resume, and
    /// declares dead the nodes whose workers are actually gone.
    pub(crate) fn detector_sweep(&self) {
        let Some(rec) = &self.recovery else {
            return;
        };
        let now = self.now_ms();
        let window = rec.config.suspicion_after_ms();
        for i in 0..self.mesh.peers() as usize {
            if rec.health(i) == NodeHealth::Dead {
                continue;
            }
            let node = NodeId::new(i as u32);
            let missed = now.saturating_sub(rec.last_beat(i)) > window;
            let isolated = self.injector.is_isolated(i as u32);
            if missed && !rec.is_alive(i) {
                // silent *and* its worker is gone: this is a real death
                self.declare_dead(node);
                continue;
            }
            match rec.health(i) {
                NodeHealth::Up if missed || isolated => {
                    rec.set_health(i, NodeHealth::Suspected);
                    self.counters.suspicions.fetch_add(1, Ordering::Relaxed);
                    self.trace
                        .emit(CLIENT_PROCESS, EventKind::Suspected { node });
                    if rec.open_breaker(i) {
                        self.counters.breaker_opens.fetch_add(1, Ordering::Relaxed);
                        self.trace
                            .emit(CLIENT_PROCESS, EventKind::BreakerOpen { node });
                    }
                    self.injector.note(format!("suspect {node}"));
                }
                NodeHealth::Suspected if !missed && !isolated => {
                    rec.set_health(i, NodeHealth::Up);
                    self.counters
                        .false_suspicions
                        .fetch_add(1, Ordering::Relaxed);
                    rec.half_open_breaker(i);
                    self.injector.note(format!("clear-suspect {node}"));
                }
                NodeHealth::Up => {
                    // beating normally: an open breaker (e.g. after a failed
                    // probe or a transient timeout) gets a fresh probe slot
                    rec.half_open_breaker(i);
                }
                _ => {}
            }
        }
        self.repair_sweep();
    }

    /// One anti-entropy pass over the replica stores: for every object,
    /// re-send the freshest available copy to replica-set members that are
    /// missing it or hold an older version — healing under-replication after
    /// deaths and divergence after dropped refresh traffic. The sweep marker
    /// is emitted even when repair is disabled ([`crate::ClusterBuilder::no_repair`])
    /// so the checker can tell "under-replicated after repair quiesced" from
    /// "repair never ran".
    fn repair_sweep(&self) {
        let Some(rec) = &self.recovery else {
            return;
        };
        self.trace.emit(CLIENT_PROCESS, EventKind::RepairSweep);
        if !rec.repair {
            return;
        }
        let mut objects: Vec<(ObjectId, NodeId)> = {
            let repl = rec.replication.lock();
            repl.iter().map(|(&o, info)| (o, info.home)).collect()
        };
        objects.sort_unstable_by_key(|&(o, _)| o);
        // epoch snapshot before the stores lock (the two are never nested)
        let epochs: HashMap<ObjectId, u64> = {
            let epochs = rec.object_epochs.read();
            objects
                .iter()
                .map(|&(o, _)| (o, epochs.get(&o).copied().unwrap_or(0)))
                .collect()
        };
        let mut puts: Vec<(NodeId, ObjectId, CheckpointFrame)> = Vec::new();
        {
            let stores = rec.replica_stores.lock();
            for &(object, home) in &objects {
                let current_epoch = epochs.get(&object).copied().unwrap_or(0);
                let mut freshest: Option<&ReplicaCheckpoint> = None;
                for (n, store) in stores.iter().enumerate() {
                    if !rec.replica_available(n) {
                        continue;
                    }
                    if let Some(ckpt) = store.get(object) {
                        if freshest.is_none_or(|f| ckpt.version() > f.version()) {
                            freshest = Some(ckpt);
                        }
                    }
                }
                let Some(freshest) = freshest else {
                    continue; // no surviving copy — nothing to replicate from
                };
                if freshest.object_epoch < current_epoch {
                    // a reinstantiation is in flight: its install will issue
                    // a refresh under the new epoch; replicating the old one
                    // would only be fenced on arrival
                    continue;
                }
                for target in self.replica_targets(object, home) {
                    let needs = match stores[target.index()].get(object) {
                        None => true,
                        Some(c) => c.version() < freshest.version(),
                    };
                    if needs {
                        puts.push((
                            target,
                            object,
                            CheckpointFrame {
                                type_tag: freshest.type_tag.clone(),
                                state: freshest.state.clone(),
                                object_epoch: freshest.object_epoch,
                                seq: freshest.seq,
                            },
                        ));
                    }
                }
            }
        }
        for (target, object, frame) in puts {
            self.counters.repairs.fetch_add(1, Ordering::Relaxed);
            // client-originated: reliable, no quorum round — repair is
            // convergence, not a new write
            let _ = self.send_from(
                None,
                target,
                Message::CheckpointPut {
                    object,
                    frame: frame.encode(),
                },
            );
        }
    }

    /// Declares `node` dead: fences its incarnation, bumps the epochs of the
    /// objects it hosted, releases their placement locks and reinstantiates
    /// them from their checkpoints at live nodes.
    fn declare_dead(&self, node: NodeId) {
        let Some(rec) = &self.recovery else {
            return;
        };
        let i = node.index();
        // Epoch arithmetic under the epoch lock; everything that sends (or
        // takes the policy lock) happens after it is released.
        let reinstated: Vec<(ObjectId, u64)> = {
            let _guard = rec.epoch_lock.lock();
            if rec.is_alive(i) || rec.health(i) == NodeHealth::Dead {
                // restarted concurrently, or a racing sweep got here first
                return;
            }
            rec.set_health(i, NodeHealth::Dead);
            rec.bump_incarnation(i);
            let stranded: Vec<ObjectId> = {
                let dir = self.directory.read();
                dir.iter()
                    .filter(|&(_, &n)| n == node)
                    .map(|(&o, _)| o)
                    .collect()
            };
            let mut epochs = rec.object_epochs.write();
            stranded
                .iter()
                .map(|&o| {
                    let e = epochs.entry(o).or_insert(0);
                    *e += 1;
                    (o, *e)
                })
                .collect()
        };
        if rec.open_breaker(i) {
            self.counters.breaker_opens.fetch_add(1, Ordering::Relaxed);
            self.trace
                .emit(CLIENT_PROCESS, EventKind::BreakerOpen { node });
        }
        self.injector.note(format!("declare-dead {node}"));
        self.trace
            .emit(CLIENT_PROCESS, EventKind::DeclaredDead { node });
        let stranded: Vec<ObjectId> = reinstated.iter().map(|&(o, _)| o).collect();
        if !stranded.is_empty() {
            // idempotent against crash_node's own release: locks already
            // released yield nothing here
            let mut policy = self.policy.lock();
            for (object, block) in policy.release_locks_for(&stranded) {
                self.trace.emit(
                    CLIENT_PROCESS,
                    EventKind::LockReleased {
                        object,
                        block,
                        cause: ReleaseCause::Crash,
                    },
                );
            }
        }
        // the dead node's replica holdings died with it
        // a clear() persists a tombstone record on WAL-backed stores;
        // epoch floors survive it by the store contract
        let _ = rec.replica_stores.lock()[i].clear();
        // persist the bumped epochs as floors at every surviving store, so
        // a cold restart cannot reinstantiate below them
        if !reinstated.is_empty() {
            let mut stores = rec.replica_stores.lock();
            for (n, store) in stores.iter_mut().enumerate() {
                if n == i {
                    continue;
                }
                for &(object, epoch) in &reinstated {
                    let _ = store.note_epoch(object, epoch);
                }
            }
        }
        for (object, epoch) in reinstated {
            let home = {
                let repl = rec.replication.lock();
                repl.get(&object).map(|info| info.home)
            };
            let Some(home) = home else {
                continue; // no replication record (object predates the detector)
            };
            // reinstantiate from the freshest surviving replica, ordered by
            // (object epoch, refresh sequence); the stale_promotion hook
            // inverts the choice for negative testing
            let source = {
                let stores = rec.replica_stores.lock();
                let mut best: Option<(NodeId, ReplicaCheckpoint)> = None;
                for (n, store) in stores.iter().enumerate() {
                    if !rec.replica_available(n) {
                        continue;
                    }
                    if let Some(ckpt) = store.get(object) {
                        let better = best.as_ref().is_none_or(|(_, b)| {
                            if rec.stale_promotion {
                                ckpt.version() < b.version()
                            } else {
                                ckpt.version() > b.version()
                            }
                        });
                        if better {
                            best = Some((NodeId::new(n as u32), ckpt.clone()));
                        }
                    }
                }
                best
            };
            let Some((replica, ckpt)) = source else {
                continue; // every copy died too — lost until a node restart
            };
            self.trace.emit(
                CLIENT_PROCESS,
                EventKind::PromotedFrom {
                    object,
                    replica,
                    object_epoch: ckpt.object_epoch,
                    seq: ckpt.seq,
                },
            );
            let Some(target) = self.pick_target(home, node) else {
                continue; // no live node to host it — stays lost until a restart
            };
            // directory first: invocations park at the target until the
            // Install drains, exactly like creation
            self.directory_set(object, target);
            self.trace.emit(
                CLIENT_PROCESS,
                EventKind::Reinstantiated {
                    object,
                    at: target,
                    epoch,
                },
            );
            self.counters
                .reinstantiations
                .fetch_add(1, Ordering::Relaxed);
            self.injector
                .note(format!("reinstantiate {object} at {target}"));
            let _ = self.send_from(
                None,
                target,
                Message::Install {
                    object,
                    type_tag: ckpt.type_tag,
                    state: ckpt.state,
                    object_epoch: epoch,
                    install_for: None,
                },
            );
        }
    }

    /// Where to reinstantiate: the object's home if it is live and healthy,
    /// else the lowest-indexed live healthy node.
    fn pick_target(&self, home: NodeId, dead: NodeId) -> Option<NodeId> {
        let rec = self.recovery.as_ref()?;
        let usable = |n: NodeId| {
            n != dead && rec.is_alive(n.index()) && rec.health(n.index()) == NodeHealth::Up
        };
        if usable(home) {
            return Some(home);
        }
        (0..self.mesh.peers()).map(NodeId::new).find(|&n| usable(n))
    }
}

/// Clones the faultable control messages (the only ones that can be
/// duplicated); state transfer is never cloned.
fn clone_control(msg: &Message) -> Option<Message> {
    match msg {
        Message::Invoke {
            object,
            method,
            payload,
            hops,
            reply,
        } => Some(Message::Invoke {
            object: *object,
            method: method.clone(),
            payload: payload.clone(),
            hops: *hops,
            reply: reply.clone(),
        }),
        Message::MoveRequest {
            object,
            to,
            block,
            context,
            hops,
            expires,
            reply,
        } => Some(Message::MoveRequest {
            object: *object,
            to: *to,
            block: *block,
            context: *context,
            hops: *hops,
            expires: *expires,
            reply: reply.clone(),
        }),
        Message::EndRequest {
            object,
            block,
            from,
            was_granted,
            context,
            hops,
        } => Some(Message::EndRequest {
            object: *object,
            block: *block,
            from: *from,
            was_granted: *was_granted,
            context: *context,
            hops: *hops,
        }),
        Message::CheckpointPut { object, frame } => Some(Message::CheckpointPut {
            object: *object,
            frame: frame.clone(),
        }),
        Message::CheckpointAck {
            object,
            object_epoch,
            seq,
            replica,
        } => Some(Message::CheckpointAck {
            object: *object,
            object_epoch: *object_epoch,
            seq: *seq,
            replica: *replica,
        }),
        _ => None,
    }
}

/// Configures a [`Cluster`].
///
/// See the crate-level documentation for a full example.
#[derive(Debug)]
// a builder is the one place independent on/off switches genuinely are
// independent bools, not a state machine
#[allow(clippy::struct_excessive_bools)]
pub struct ClusterBuilder {
    nodes: u32,
    policy: PolicyKind,
    custom_policy: Option<Box<dyn MovePolicy>>,
    attachment_mode: AttachmentMode,
    fault_plan: Option<FaultPlan>,
    call_timeout: Duration,
    invoke_retries: u32,
    lease_ms: Option<u64>,
    manual_clock: bool,
    trace: bool,
    detector: Option<DetectorConfig>,
    unfenced: bool,
    replication_k: usize,
    repair: bool,
    stale_promotion: bool,
    store_dir: Option<std::path::PathBuf>,
    store_fsync: FsyncPolicy,
    schedule: Arc<dyn ScheduleSource>,
}

impl ClusterBuilder {
    /// Number of nodes (worker threads). Defaults to 2.
    #[must_use]
    pub fn nodes(mut self, n: u32) -> Self {
        assert!(n > 0, "a cluster needs at least one node");
        self.nodes = n;
        self
    }

    /// The migration policy interpreting `move()`-requests. Defaults to
    /// transient placement.
    #[must_use]
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self.custom_policy = None;
        self
    }

    /// Installs a user-defined migration policy (any
    /// [`oml_core::policy::MovePolicy`]) instead of a built-in.
    #[must_use]
    pub fn policy_custom(mut self, policy: impl MovePolicy + 'static) -> Self {
        self.custom_policy = Some(Box::new(policy));
        self
    }

    /// The attachment semantics. Defaults to unrestricted.
    #[must_use]
    pub fn attachment_mode(mut self, mode: AttachmentMode) -> Self {
        self.attachment_mode = mode;
        self
    }

    /// Installs a seeded fault plan: drops, delays, duplicates and
    /// partitions for control messages. Without one the cluster is
    /// fault-free (but partitions and crashes are still available).
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The deadline for each blocking client call (per attempt). Defaults
    /// to 5 seconds.
    ///
    /// # Panics
    ///
    /// Panics on a zero timeout.
    #[must_use]
    pub fn call_timeout(mut self, timeout: Duration) -> Self {
        assert!(!timeout.is_zero(), "a zero call timeout cannot succeed");
        self.call_timeout = timeout;
        self
    }

    /// How many times a timed-out invocation is re-sent (invocations are
    /// the only idempotent-by-contract call; moves and creates are never
    /// retried). Defaults to 2.
    #[must_use]
    pub fn invoke_retries(mut self, retries: u32) -> Self {
        self.invoke_retries = retries;
        self
    }

    /// Makes placement locks leases expiring after `ttl_ms` of inactivity
    /// (see [`oml_core::lease::LeaseTable`]). Without this, locks are held
    /// until their end-request arrives — forever, if it never does.
    ///
    /// # Panics
    ///
    /// Panics if `ttl_ms` is zero.
    #[must_use]
    pub fn lease_ms(mut self, ttl_ms: u64) -> Self {
        assert!(ttl_ms > 0, "a lease needs a positive duration");
        self.lease_ms = Some(ttl_ms);
        self
    }

    /// Replaces the wall-clock lease clock with a counter advanced only by
    /// [`Cluster::advance_clock`] — deterministic lease expiry for tests.
    #[must_use]
    pub fn manual_clock(mut self) -> Self {
        self.manual_clock = true;
        self
    }

    /// Enables the failure detector — and with it the whole crash-recovery
    /// subsystem: heartbeats, suspicion after `k_missed * heartbeat_ms` of
    /// silence, epoch fencing, passive home checkpoints, reinstantiation of
    /// a dead node's objects, and per-node circuit breakers (calls to
    /// suspected or dead nodes fail fast with
    /// [`RuntimeError::NodeDown`]). Without this call the runtime behaves
    /// exactly as before.
    ///
    /// Under a wall clock a monitor thread sweeps the detector every
    /// `heartbeat_ms`; under [`ClusterBuilder::manual_clock`] call
    /// [`Cluster::detector_sweep`] after advancing the clock.
    ///
    /// # Panics
    ///
    /// Panics if `heartbeat_ms` or `k_missed` is zero.
    #[must_use]
    pub fn failure_detector(mut self, heartbeat_ms: u64, k_missed: u32) -> Self {
        assert!(heartbeat_ms > 0, "a zero heartbeat interval cannot beat");
        assert!(k_missed > 0, "suspicion needs at least one missed beat");
        self.detector = Some(DetectorConfig {
            heartbeat_ms,
            k_missed,
        });
        self
    }

    /// Sets the checkpoint replication factor `k = f + 1`: how many nodes
    /// hold each object's passive copy (home-preferred, rendezvous-hashed;
    /// clamped to the number of *available* nodes at placement time). The
    /// default of 2 survives any single-node failure, including the host;
    /// `k` survives any `k - 1` simultaneous failures once a refresh has
    /// reached its quorum. `k = 1` reproduces the old single-home-checkpoint
    /// behaviour — and its host+home double-crash data loss. Meaningless
    /// without [`ClusterBuilder::failure_detector`].
    ///
    /// # Panics
    ///
    /// Panics on `k = 0` (an unreplicated checkpoint is no checkpoint).
    #[must_use]
    pub fn replication(mut self, k: usize) -> Self {
        assert!(k > 0, "replication factor must be at least 1");
        self.replication_k = k;
        self
    }

    /// Disables the anti-entropy repair sweep (negative-testing hook):
    /// objects under-replicated by deaths or dropped refresh traffic then
    /// *stay* under-replicated — the scenario `oml-check`'s
    /// `ReplicationFactorViolation` invariant exists to catch.
    #[must_use]
    pub fn no_repair(mut self) -> Self {
        self.repair = false;
        self
    }

    /// Makes reinstantiation promote the *stalest* surviving replica instead
    /// of the freshest (negative-testing hook): a quorum-acked write is then
    /// observably lost even though a fresher copy survives — the scenario
    /// `oml-check`'s `StaleReplicaPromoted` invariant exists to catch.
    #[must_use]
    pub fn stale_promotion(mut self) -> Self {
        self.stale_promotion = true;
        self
    }

    /// Backs every node's replica store with an on-disk [`crate::WalStore`]
    /// at `dir/node-<i>` under `fsync`: checkpoint puts are acknowledged
    /// only once the record is durable per policy, and a cold restart of
    /// the whole cluster (same `dir`) replays snapshot + WAL, truncates
    /// torn tails and seeds the object-epoch table from the persisted
    /// floors so fencing survives the restart. Meaningless without
    /// [`ClusterBuilder::failure_detector`].
    #[must_use]
    pub fn durable_store(mut self, dir: impl Into<std::path::PathBuf>, fsync: FsyncPolicy) -> Self {
        self.store_dir = Some(dir.into());
        self.store_fsync = fsync;
        self
    }

    /// Disables epoch fencing (negative-testing hook): zombie workers and
    /// their stale messages are then *not* rejected, so
    /// [`Cluster::zombie_restart_node`] observably corrupts state — the
    /// scenario `oml-check`'s stale-incarnation invariant exists to catch.
    #[must_use]
    pub fn unfenced(mut self) -> Self {
        self.unfenced = true;
        self
    }

    /// Installs a custom [`ScheduleSource`]: every surviving control-message
    /// hand-off and every worker idle tick is decided by it instead of the
    /// free-running default. This is the seam a deterministic scheduler (or
    /// a schedule-perturbing test harness) plugs into — see
    /// [`crate::schedule`].
    #[must_use]
    pub fn schedule_source(mut self, source: Arc<dyn ScheduleSource>) -> Self {
        self.schedule = source;
        self
    }

    /// Enables protocol trace collection: every node (and the client
    /// facade) records the structured events `oml-check` replays —
    /// sends/receives with message ids, residency transitions, move
    /// decisions, lock and lease activity, closure transfers, crashes.
    /// Drain the trace with [`Cluster::take_trace`] and feed it to
    /// [`oml_check::check_trace`].
    #[must_use]
    pub fn trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Spawns the node threads and returns the running cluster.
    #[must_use]
    pub fn build(self) -> Cluster {
        let mesh = ChannelMesh::new(self.nodes, MeshConfig::default());
        let policy = match (self.custom_policy, self.lease_ms) {
            (Some(p), _) => p,
            (None, Some(ttl)) => self.policy.build_with_lease(ttl),
            (None, None) => self.policy.build(),
        };
        let plan = self.fault_plan.unwrap_or_else(|| FaultPlan::seeded(0));
        let jitter_seed = plan.seed();
        // per-node cold-recovery outcomes (WAL-backed stores only), traced
        // once the collector exists
        type NodeRecovery = (u32, Vec<(ObjectId, u64, u64)>, bool, bool);
        let mut recovered: Vec<NodeRecovery> = Vec::new();
        let recovery = self.detector.map(|cfg| {
            let stores: Vec<Box<dyn CheckpointStore>> = match &self.store_dir {
                Some(dir) => (0..self.nodes)
                    .map(|i| {
                        let cfg = crate::store::WalStoreConfig::with_fsync(
                            dir.join(format!("node-{i}")),
                            self.store_fsync,
                        );
                        let (store, report) = crate::store::WalStore::open(cfg)
                            .unwrap_or_else(|e| panic!("durable store node-{i}: {e}"));
                        let mut versions: Vec<(ObjectId, u64, u64)> = store
                            .objects()
                            .iter()
                            .filter_map(|&o| store.get(o).map(|c| (o, c.object_epoch, c.seq)))
                            .collect();
                        versions.sort_unstable_by_key(|&(o, _, _)| o);
                        recovered.push((i, versions, report.torn_bytes > 0, report.corrupt));
                        Box::new(store) as Box<dyn CheckpointStore>
                    })
                    .collect(),
                None => (0..self.nodes)
                    .map(|_| Box::new(crate::store::MemStore::new()) as Box<dyn CheckpointStore>)
                    .collect(),
            };
            RecoveryState::new(
                self.nodes as usize,
                cfg,
                !self.unfenced,
                self.replication_k,
                self.repair,
                self.stale_promotion,
                stores,
            )
        });
        let shared = Arc::new(Shared {
            mesh,
            directory: OrderedRwLock::new("shared.directory", HashMap::new()),
            mobility: OrderedRwLock::new("shared.mobility", HashMap::new()),
            policy: OrderedMutex::new("shared.policy", policy),
            attachments: OrderedMutex::new(
                "shared.attachments",
                AttachmentGraph::new(self.attachment_mode),
            ),
            alliances: OrderedMutex::new("shared.alliances", AllianceRegistry::new()),
            registry: TypeRegistry::new(),
            counters: Counters::default(),
            injector: FaultInjector::new(plan),
            schedule: self.schedule,
            stash: OrderedMutex::new("shared.stash", Vec::new()),
            recovery,
            clock: if self.manual_clock {
                RuntimeClock::Manual(AtomicU64::new(0))
            } else {
                RuntimeClock::Wall(Instant::now())
            },
            trace: TraceCollector::new(self.trace),
            call_timeout: self.call_timeout,
            invoke_retries: self.invoke_retries,
            jitter: OrderedMutex::new("shared.jitter", jitter_seed),
            next_object: AtomicU32::new(0),
            next_block: AtomicU32::new(0),
            closing: AtomicBool::new(false),
            down: AtomicBool::new(false),
        });
        if shared.recovery.is_some() {
            // one-shot configuration marker: arms the checker's replication
            // invariants (a trace without it is checked as before)
            shared.trace.emit(
                CLIENT_PROCESS,
                EventKind::ReplicationFactor {
                    k: self.replication_k as u32,
                    nodes: self.nodes,
                },
            );
            // cold-recovery markers: arm the checker's durability
            // invariants and record the recovered epoch floors
            for (node, versions, torn, corrupt) in recovered {
                shared.trace.emit(
                    node,
                    EventKind::ColdRecovered {
                        node,
                        recovered: versions,
                        torn,
                        corrupt,
                    },
                );
            }
        }
        let handles = (0..self.nodes as usize)
            .map(|i| Some(spawn_worker(&shared, NodeId::new(i as u32), 1)))
            .collect();
        // under a wall clock the detector needs someone to sweep it; under a
        // manual clock tests drive Cluster::detector_sweep themselves
        let monitor = match (&shared.recovery, self.manual_clock) {
            (Some(rec), false) => {
                let hb = rec.config.heartbeat_ms;
                let monitor_shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("oml-monitor".to_owned())
                        .spawn(move || {
                            // short steps so shutdown is prompt even with
                            // long heartbeat intervals
                            let step = Duration::from_millis(hb.clamp(1, 10));
                            let mut last_sweep = 0u64;
                            while !monitor_shared.is_closing() {
                                std::thread::sleep(step);
                                let now = monitor_shared.now_ms();
                                if now.saturating_sub(last_sweep) >= hb {
                                    last_sweep = now;
                                    monitor_shared.detector_sweep();
                                }
                            }
                        })
                        .expect("spawn detector monitor"),
                )
            }
            _ => None,
        };
        Cluster {
            shared,
            handles: OrderedMutex::new("cluster.handles", handles),
            monitor: OrderedMutex::new("cluster.monitor", monitor),
        }
    }
}

/// Maps a mesh-transport failure onto the runtime's error surface:
/// backpressure (the bounded inbox stayed full past the send deadline)
/// is a timeout the caller can retry; everything else means shutdown.
fn map_mesh_err(e: TransportError) -> RuntimeError {
    match e {
        TransportError::Backpressure { waited_ms } | TransportError::Timeout { waited_ms } => {
            RuntimeError::Timeout { waited_ms }
        }
        _ => RuntimeError::ShuttingDown,
    }
}

fn spawn_worker(shared: &Arc<Shared>, id: NodeId, epoch: u64) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    let rx = shared.mesh.endpoint(id.as_u32());
    std::thread::Builder::new()
        .name(format!("oml-node-{}", id.index()))
        .spawn(move || NodeWorker::new(id, shared, rx, epoch).run())
        .expect("spawn node worker")
}

/// A running multi-node object system.
pub struct Cluster {
    shared: Arc<Shared>,
    /// One slot per node; `None` while that node is crashed.
    handles: OrderedMutex<Vec<Option<JoinHandle<()>>>>,
    /// The failure-detector sweep thread (wall-clock detectors only).
    monitor: OrderedMutex<Option<JoinHandle<()>>>,
}

impl Cluster {
    /// Starts configuring a cluster.
    #[must_use]
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder {
            nodes: 2,
            policy: PolicyKind::TransientPlacement,
            custom_policy: None,
            attachment_mode: AttachmentMode::Unrestricted,
            fault_plan: None,
            call_timeout: Duration::from_secs(5),
            invoke_retries: 2,
            lease_ms: None,
            manual_clock: false,
            trace: false,
            detector: None,
            unfenced: false,
            replication_k: 2,
            repair: true,
            stale_promotion: false,
            store_dir: None,
            store_fsync: FsyncPolicy::Always,
            schedule: Arc::new(FreeRun),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> u32 {
        self.shared.mesh.peers()
    }

    /// Registers the delinearizer for a type tag. Must happen before any
    /// object of that type migrates (migrations of unregistered types are
    /// refused rather than losing the object).
    pub fn register_type(&self, tag: &str, f: Delinearizer) {
        self.shared.registry.register(tag, f);
    }

    /// Creates `instance` at `node` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownNode`] for an out-of-range node,
    /// [`RuntimeError::ShuttingDown`] if the cluster is stopping,
    /// [`RuntimeError::NodeDown`] immediately when the failure detector has
    /// the node suspected or dead, and [`RuntimeError::Timeout`] when the
    /// deadline elapses (e.g. the node is crashed without a detector).
    pub fn create(
        &self,
        node: NodeId,
        instance: Box<dyn MobileObject>,
    ) -> Result<ObjectId, RuntimeError> {
        self.check_node(node)?;
        self.check_live()?;
        self.shared.admit(node)?;
        let object = ObjectId::new(self.shared.next_object.fetch_add(1, Ordering::Relaxed));
        // the directory knows the object before the Create lands, so early
        // invocations park at the right node
        self.shared.directory_set(object, node);
        // the home checkpoint starts as the object's birth state
        self.shared.checkpoint_init(
            object,
            node,
            instance.type_tag().to_owned(),
            Bytes::from(instance.linearize()),
        );
        let (reply, rx) = bounded(1);
        self.shared.send_from(
            None,
            node,
            Message::Create {
                object,
                instance,
                reply,
            },
        )?;
        let res = self.await_reply(&rx);
        self.shared.settle_call(node, res.is_ok());
        res??;
        Ok(object)
    }

    /// Invokes `method` on the object, wherever it currently is. Blocks
    /// until the result message returns or the deadline elapses; a timed-out
    /// attempt is retried (with exponential backoff and seeded jitter, and a
    /// fresh directory lookup per attempt) up to
    /// [`ClusterBuilder::invoke_retries`] times — an invocation that timed
    /// out may still have executed, so callers get at-least-once semantics
    /// under faults.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`]: unknown object, method failure,
    /// forwarding exhaustion, shutdown, [`RuntimeError::NodeDown`] when
    /// every attempt was failed fast by the circuit breaker, or
    /// [`RuntimeError::Timeout`] once every attempt's deadline elapsed.
    pub fn invoke(
        &self,
        object: ObjectId,
        method: &str,
        payload: &[u8],
    ) -> Result<Vec<u8>, RuntimeError> {
        self.check_live()?;
        let timeout = self.shared.call_timeout;
        let attempts = self.shared.invoke_retries.saturating_add(1);
        let mut waited_ms = 0u64;
        let mut backoff_ms = 2u64;
        let mut fast_fail: Option<RuntimeError> = None;
        for attempt in 0..attempts {
            // re-resolve: the object may have moved (or its node restarted,
            // or the object been reinstantiated elsewhere) since the lost
            // attempt
            let node = self
                .shared
                .directory_get(object)
                .ok_or(RuntimeError::UnknownObject(object))?;
            if let Err(down) = self.shared.admit(node) {
                // fail fast without touching the wire (no fault-plan
                // sequence is consumed, so seeded runs stay reproducible);
                // back off and re-resolve — a reinstantiation may land
                fast_fail = Some(down);
                if attempt + 1 < attempts {
                    self.shared.counters.retries.fetch_add(1, Ordering::Relaxed);
                    let jitter = self.shared.next_jitter_ms(backoff_ms);
                    std::thread::sleep(Duration::from_millis(backoff_ms + jitter));
                    backoff_ms = backoff_ms.saturating_mul(2);
                }
                continue;
            }
            fast_fail = None;
            let (reply, rx) = bounded(1);
            self.shared.send_from(
                None,
                node,
                Message::Invoke {
                    object,
                    method: method.to_owned(),
                    payload: Bytes::copy_from_slice(payload),
                    hops: MAX_HOPS,
                    reply,
                },
            )?;
            match rx.recv_timeout(timeout) {
                Ok(res) => {
                    self.shared.settle_call(node, true);
                    return Ok(res?.to_vec());
                }
                Err(_) => {
                    // Timeout, or the worker crashed holding our reply
                    // channel — both mean "no answer within the deadline"
                    self.shared.settle_call(node, false);
                    waited_ms += timeout.as_millis() as u64;
                    self.shared
                        .counters
                        .timeouts
                        .fetch_add(1, Ordering::Relaxed);
                    if attempt + 1 < attempts {
                        self.shared.counters.retries.fetch_add(1, Ordering::Relaxed);
                        let jitter = self.shared.next_jitter_ms(backoff_ms);
                        std::thread::sleep(Duration::from_millis(backoff_ms + jitter));
                        backoff_ms = backoff_ms.saturating_mul(2);
                    }
                }
            }
        }
        if self.shared.is_closing() {
            Err(RuntimeError::ShuttingDown)
        } else if let Some(down) = fast_fail {
            Err(down)
        } else {
            Err(RuntimeError::Timeout { waited_ms })
        }
    }

    /// Opens a move-block: requests migration of `object` (and its
    /// attachment closure) to `to` and returns an RAII guard whose `Drop`
    /// issues the `end`-request. Check [`MoveGuard::granted`] — under
    /// transient placement a concurrent holder leads to a denial, in which
    /// case invocations simply stay remote.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`].
    pub fn move_block(&self, object: ObjectId, to: NodeId) -> Result<MoveGuard<'_>, RuntimeError> {
        self.move_block_in(object, to, None)
    }

    /// Like [`Cluster::move_block`], with an explicit cooperation context:
    /// the migration drags the A-transitive closure of that alliance (§3.4).
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`].
    pub fn move_block_in(
        &self,
        object: ObjectId,
        to: NodeId,
        context: Option<AllianceId>,
    ) -> Result<MoveGuard<'_>, RuntimeError> {
        self.check_node(to)?;
        self.check_live()?;
        let node = self
            .shared
            .directory_get(object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        // both ends must be admitted: the host processes the request, the
        // destination receives the object
        self.shared.admit(node)?;
        if let Err(down) = self.shared.admit(to) {
            // hand back the probe slot admit(node) may have claimed
            self.shared.settle_call(node, false);
            return Err(down);
        }
        let block = BlockId::new(self.shared.next_block.fetch_add(1, Ordering::Relaxed));
        self.shared.trace.emit(
            CLIENT_PROCESS,
            EventKind::MoveRequested { object, to, block },
        );
        let (reply, rx) = bounded(1);
        self.shared.send_from(
            None,
            node,
            Message::MoveRequest {
                object,
                to,
                block,
                context,
                hops: MAX_HOPS,
                // the request carries the same deadline await_reply enforces:
                // a node that sees it later than this denies it, so a move
                // this caller gave up on can never be granted behind its back
                expires: Instant::now() + self.shared.call_timeout,
                reply,
            },
        )?;
        // one attempt only: a move is not idempotent (re-sending could
        // grant twice under two blocks)
        let res = self.await_reply(&rx);
        self.shared.settle_call(node, res.is_ok());
        self.shared.settle_call(to, res.is_ok());
        let granted = res??;
        Ok(MoveGuard {
            cluster: self,
            object,
            block,
            from: to,
            context,
            granted,
            migrate_back: None,
            ended: false,
        })
    }

    /// A `visit`-block (§2.3): a move combined with a migrate-back — on drop
    /// the guard issues the end-request and sends the object home.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`].
    pub fn visit_block(&self, object: ObjectId, to: NodeId) -> Result<MoveGuard<'_>, RuntimeError> {
        let origin = self.shared.directory_get(object);
        let mut guard = self.move_block_in(object, to, None)?;
        if guard.granted {
            guard.migrate_back = origin.filter(|&o| o != to);
        }
        Ok(guard)
    }

    /// Executes an operation declared with `move`/`visit` parameter modes
    /// (§2.3, Fig. 1): call-by-move / call-by-visit.
    ///
    /// Each `move` argument is migrated to the callee's node for the
    /// duration of the invocation and stays there; each `visit` argument
    /// migrates back afterwards; `ref` arguments are untouched. Whether a
    /// parameter migration is honoured is, as always, up to the installed
    /// policy — under transient placement a locked argument simply stays
    /// remote and the call proceeds anyway.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ArityMismatch`] if `args` does not match the
    /// declaration, plus everything [`Cluster::invoke`] can report.
    pub fn invoke_with_decl(
        &self,
        callee: ObjectId,
        decl: &oml_core::lang::OperationDecl,
        args: &[ObjectId],
        payload: &[u8],
    ) -> Result<Vec<u8>, RuntimeError> {
        use oml_core::lang::ParamMode;

        if args.len() != decl.params.len() {
            return Err(RuntimeError::ArityMismatch {
                expected: decl.params.len(),
                got: args.len(),
            });
        }
        let callee_node = self
            .shared
            .directory_get(callee)
            .ok_or(RuntimeError::UnknownObject(callee))?;

        // open the parameter move-blocks; the guards end them (and run the
        // visit migrate-backs) when the invocation completes
        let mut guards = Vec::new();
        for (&arg, mode) in args.iter().zip(decl.modes()) {
            match mode {
                ParamMode::Ref => {}
                ParamMode::Move => guards.push(self.move_block(arg, callee_node)?),
                ParamMode::Visit => guards.push(self.visit_block(arg, callee_node)?),
            }
        }
        let result = self.invoke(callee, &decl.name, payload);
        drop(guards);
        result
    }

    /// Where the object currently is (per the directory).
    #[must_use]
    pub fn location_of(&self, object: ObjectId) -> Option<NodeId> {
        self.shared.directory_get(object)
    }

    /// A snapshot of every object's current location, in id order — the
    /// operator's view of the placement the policies produced.
    #[must_use]
    pub fn placement_snapshot(&self) -> Vec<(ObjectId, NodeId)> {
        let dir = self.shared.directory.read();
        let mut v: Vec<(ObjectId, NodeId)> = dir.iter().map(|(&o, &n)| (o, n)).collect();
        v.sort_unstable_by_key(|&(o, _)| o);
        v
    }

    /// How many objects each node currently hosts (index = node id) — a
    /// quick load-balance view.
    #[must_use]
    pub fn occupancy(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.shared.mesh.peers() as usize];
        for (_, node) in self.placement_snapshot() {
            counts[node.index()] += 1;
        }
        counts
    }

    /// A snapshot of the cluster's activity counters.
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        use std::sync::atomic::Ordering::Relaxed;
        let c = &self.shared.counters;
        ClusterStats {
            invocations: c.invocations.load(Relaxed),
            moves_granted: c.moves_granted.load(Relaxed),
            moves_denied: c.moves_denied.load(Relaxed),
            objects_migrated: c.objects_migrated.load(Relaxed),
            forwards: c.forwards.load(Relaxed),
            timeouts: c.timeouts.load(Relaxed),
            retries: c.retries.load(Relaxed),
            leases_expired: c.leases_expired.load(Relaxed),
            suspicions: c.suspicions.load(Relaxed),
            false_suspicions: c.false_suspicions.load(Relaxed),
            reinstantiations: c.reinstantiations.load(Relaxed),
            fenced_stale: c.fenced_stale.load(Relaxed),
            breaker_opens: c.breaker_opens.load(Relaxed),
            checkpoint_refreshes: c.checkpoint_refreshes.load(Relaxed),
            quorum_refreshes: c.quorum_refreshes.load(Relaxed),
            quorum_refresh_failures: c.quorum_refresh_failures.load(Relaxed),
            repairs: c.repairs.load(Relaxed),
        }
    }

    /// Per-object checkpoint durability margins, in object-id order: live
    /// replica count, refresh age and the freshest quorum-acked write.
    /// Empty without a failure detector.
    #[must_use]
    pub fn checkpoint_health(&self) -> Vec<CheckpointHealth> {
        let Some(rec) = &self.shared.recovery else {
            return Vec::new();
        };
        let now = self.shared.now_ms();
        // sequential acquisition (stores, then replication) — never nested
        let counts: HashMap<ObjectId, u32> = {
            let stores = rec.replica_stores.lock();
            let mut m = HashMap::new();
            for (n, store) in stores.iter().enumerate() {
                if !rec.replica_available(n) {
                    continue;
                }
                for o in store.objects() {
                    *m.entry(o).or_insert(0) += 1;
                }
            }
            m
        };
        let mut v: Vec<CheckpointHealth> = {
            let repl = rec.replication.lock();
            repl.iter()
                .map(|(&object, info)| CheckpointHealth {
                    object,
                    replicas: counts.get(&object).copied().unwrap_or(0),
                    refresh_age_ms: now.saturating_sub(info.last_refresh_at_ms),
                    quorum: info.last_quorum,
                })
                .collect()
        };
        v.sort_unstable_by_key(|h| h.object);
        v
    }

    /// The object's current replica set: the first `k` *available* nodes in
    /// its deterministic placement preference order (home first, then
    /// rendezvous-hashed). `None` without a detector or for an unknown
    /// object.
    #[must_use]
    pub fn replica_set(&self, object: ObjectId) -> Option<Vec<NodeId>> {
        let rec = self.shared.recovery.as_ref()?;
        let home = {
            let repl = rec.replication.lock();
            repl.get(&object)?.home
        };
        Some(
            preference_order(object, home, self.shared.mesh.peers() as usize)
                .into_iter()
                .filter(|n| rec.replica_available(n.index()))
                .take(rec.replica_k)
                .collect(),
        )
    }

    /// The object's current epoch: 0 at birth, bumped by every
    /// reinstantiation. Always 0 without a failure detector.
    #[must_use]
    pub fn object_epoch(&self, object: ObjectId) -> u64 {
        self.shared.object_epoch(object)
    }

    /// Whether the object is currently resident at `node`.
    #[must_use]
    pub fn is_resident(&self, object: ObjectId, node: NodeId) -> bool {
        self.location_of(object) == Some(node)
    }

    /// `fix()` — transiently pins the object (§2.2).
    pub fn fix(&self, object: ObjectId) {
        self.shared
            .mobility
            .write()
            .entry(object)
            .or_default()
            .fix();
    }

    /// `unfix()` — lifts a transient fix.
    pub fn unfix(&self, object: ObjectId) {
        self.shared
            .mobility
            .write()
            .entry(object)
            .or_default()
            .unfix();
    }

    /// `refix()` — re-establishes a transient fix.
    pub fn refix(&self, object: ObjectId) {
        self.shared
            .mobility
            .write()
            .entry(object)
            .or_default()
            .refix();
    }

    /// `attach(object, to)` in an optional cooperation context.
    ///
    /// # Errors
    ///
    /// Propagates [`AttachError`] (self-attachment, unknown alliance,
    /// non-member endpoints).
    pub fn attach(
        &self,
        object: ObjectId,
        to: ObjectId,
        context: Option<AllianceId>,
    ) -> Result<AttachOutcome, AttachError> {
        let outcome = {
            let alliances = self.shared.alliances.lock();
            self.shared
                .attachments
                .lock()
                .attach_checked(object, to, context, &alliances)
        };
        if outcome.is_ok() {
            self.shared
                .trace
                .emit(CLIENT_PROCESS, EventKind::Attach { a: object, b: to });
        }
        outcome
    }

    /// `detach(object, to)`; returns whether an edge was removed.
    pub fn detach(&self, object: ObjectId, to: ObjectId) -> bool {
        let removed = self.shared.attachments.lock().detach(object, to);
        if removed {
            self.shared
                .trace
                .emit(CLIENT_PROCESS, EventKind::Detach { a: object, b: to });
        }
        removed
    }

    /// Creates an alliance.
    pub fn create_alliance(&self, name: &str) -> AllianceId {
        self.shared.alliances.lock().create(name)
    }

    /// Adds an object to an alliance.
    ///
    /// # Errors
    ///
    /// Propagates [`oml_core::error::AllianceError`].
    pub fn join_alliance(
        &self,
        alliance: AllianceId,
        object: ObjectId,
    ) -> Result<(), oml_core::error::AllianceError> {
        self.shared.alliances.lock().join(alliance, object)
    }

    /// Crashes `node`: its worker stashes the hosted objects (they survive
    /// the "machine", like disk state) and exits without draining its
    /// queue. Messages keep queueing for the node and are processed after
    /// [`Cluster::restart_node`]; until then, calls against its objects
    /// time out. Idempotent — crashing a crashed node is a no-op.
    ///
    /// Placement locks on the stashed objects were *volatile* state of the
    /// dead host: the blocks holding them ran there and their end-requests
    /// can never arrive, so the policy releases them here instead of leaving
    /// the objects locked until lease expiry (or forever, without a TTL).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownNode`] for an out-of-range node.
    pub fn crash_node(&self, node: NodeId) -> Result<(), RuntimeError> {
        self.check_node(node)?;
        let handle = self.handles.lock()[node.index()].take();
        let Some(handle) = handle else {
            return Ok(());
        };
        // the crash command bypasses the injector: it is scripted, not a
        // message fault
        // raw (deadline-free) sender: the scripted crash command must reach
        // the worker even through a full inbox
        let _ = self
            .shared
            .mesh
            .sender(node.as_u32())
            .send(Envelope::untraced(Message::Crash));
        let _ = handle.join();
        self.shared.injector.note(format!("crash {node}"));
        self.shared
            .trace
            .emit(CLIENT_PROCESS, EventKind::Crash { node });
        // the worker has stashed its objects (join() ordered that before
        // this read); release the locks their dead blocks held
        let stranded: Vec<ObjectId> = {
            let stash = self.shared.stash.lock();
            stash
                .iter()
                .filter(|(home, _, _, _)| *home == node)
                .map(|(_, object, _, _)| *object)
                .collect()
        };
        if !stranded.is_empty() {
            // emitted under the policy guard: lock-state events are ordered
            // by the policy mutex so the trace mirrors the lock table
            let mut policy = self.shared.policy.lock();
            for (object, block) in policy.release_locks_for(&stranded) {
                self.shared.trace.emit(
                    CLIENT_PROCESS,
                    EventKind::LockReleased {
                        object,
                        block,
                        cause: ReleaseCause::Crash,
                    },
                );
            }
        }
        Ok(())
    }

    /// Restarts a crashed node: a fresh worker resumes on the node's
    /// (still-queued) channel and reclaims the stashed objects.
    ///
    /// With a failure detector the node rejoins under a **fresh
    /// incarnation**: its old epoch stays fenced, and reclamation skips any
    /// stashed object that was reinstantiated elsewhere while the node was
    /// down — the restarted node does not reclaim what it no longer owns.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownNode`] for an out-of-range node;
    /// [`RuntimeError::NotDead`] if the node's worker is still running —
    /// restarting a live node would bump its incarnation out from under the
    /// live worker and re-seed its health inconsistently, so only crashed
    /// (or fenced-zombie-exited) nodes can be restarted. `NotDead` is also
    /// returned transiently while a fenced zombie is still winding down;
    /// retry after it exits.
    pub fn restart_node(&self, node: NodeId) -> Result<(), RuntimeError> {
        self.check_node(node)?;
        let mut handles = self.handles.lock();
        if let Some(handle) = &handles[node.index()] {
            if !handle.is_finished() {
                return Err(RuntimeError::NotDead(node));
            }
            // a fenced zombie exited on its own; reap it and respawn
            if let Some(handle) = handles[node.index()].take() {
                let _ = handle.join();
            }
        }
        self.shared.injector.note(format!("restart {node}"));
        self.shared
            .trace
            .emit(CLIENT_PROCESS, EventKind::Restart { node });
        let epoch = self.shared.rejoin(node);
        handles[node.index()] = Some(spawn_worker(&self.shared, node, epoch));
        Ok(())
    }

    /// Fault-injection hook: restarts a crashed node under its **old**
    /// incarnation — a "zombie" that believes it still owns its stashed
    /// objects. With fencing (the default) the zombie notices the newer
    /// epoch and exits without reclaiming anything; built
    /// [`ClusterBuilder::unfenced`], it double-installs state the cluster
    /// already reinstantiated elsewhere — the corruption `oml-check`'s
    /// stale-incarnation invariant flags. Idempotent on a running node.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownNode`] for an out-of-range node.
    pub fn zombie_restart_node(&self, node: NodeId) -> Result<(), RuntimeError> {
        self.check_node(node)?;
        let mut handles = self.handles.lock();
        if let Some(handle) = &handles[node.index()] {
            if !handle.is_finished() {
                return Ok(());
            }
            if let Some(handle) = handles[node.index()].take() {
                let _ = handle.join();
            }
        }
        // the incarnation it crashed with: one before the current fence
        let stale_epoch = self
            .shared
            .incarnation(node.as_u32())
            .saturating_sub(1)
            .max(1);
        self.shared.injector.note(format!("zombie-restart {node}"));
        self.shared
            .trace
            .emit(CLIENT_PROCESS, EventKind::Restart { node });
        handles[node.index()] = Some(spawn_worker(&self.shared, node, stale_epoch));
        Ok(())
    }

    /// Runs one failure-detector sweep at the current clock: suspects
    /// silent or partitioned nodes, clears suspicions whose beats resumed,
    /// and declares dead (reinstantiating their objects) the silent nodes
    /// whose workers are actually gone. Under a wall clock the monitor
    /// thread calls this every heartbeat; manual-clock tests call it
    /// directly after [`Cluster::advance_clock`]. A no-op without a
    /// detector.
    pub fn detector_sweep(&self) {
        self.shared.detector_sweep();
    }

    /// The failure detector's current verdict on `node`; `None` without a
    /// detector or for an out-of-range node.
    #[must_use]
    pub fn node_health(&self, node: NodeId) -> Option<NodeHealth> {
        if node.index() >= self.shared.mesh.peers() as usize {
            return None;
        }
        self.shared
            .recovery
            .as_ref()
            .map(|rec| rec.health(node.index()))
    }

    /// Severs the link between two nodes (both directions) for control
    /// messages until [`Cluster::heal`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownNode`] for an out-of-range node.
    pub fn partition(&self, a: NodeId, b: NodeId) -> Result<(), RuntimeError> {
        self.check_node(a)?;
        self.check_node(b)?;
        self.shared.injector.partition(a, b);
        Ok(())
    }

    /// Heals a partition created by [`Cluster::partition`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownNode`] for an out-of-range node.
    pub fn heal(&self, a: NodeId, b: NodeId) -> Result<(), RuntimeError> {
        self.check_node(a)?;
        self.check_node(b)?;
        self.shared.injector.heal(a, b);
        Ok(())
    }

    /// Heals every partition.
    pub fn heal_all(&self) {
        self.shared.injector.heal_all();
    }

    /// The fault events injected so far (drops, duplicates, delays,
    /// partitions, crashes, restarts) in decision order. With a seeded
    /// plan and a sequential caller, identical runs produce identical
    /// traces.
    #[must_use]
    pub fn fault_trace(&self) -> Vec<String> {
        self.shared.injector.trace()
    }

    /// Whether protocol tracing is enabled ([`ClusterBuilder::trace`]).
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.shared.trace.is_enabled()
    }

    /// Drains the protocol trace collected so far — the structured event
    /// stream [`oml_check::check_trace`] verifies. Call after quiescing the
    /// cluster ([`Cluster::shutdown`]) for a complete picture; each process's
    /// slice of the returned vector is that process's program order.
    #[must_use]
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        self.shared.trace.take()
    }

    /// The placement locks the policy currently holds — for invariant
    /// checks ("no leaked locks after quiescence").
    #[must_use]
    pub fn held_locks(&self) -> Vec<(ObjectId, BlockId)> {
        self.shared.policy.lock().held_locks()
    }

    /// Forces a lease sweep at the current clock, returning the locks it
    /// expired. Workers sweep on their idle ticks anyway; this is for tests
    /// that want the sweep *now*.
    pub fn sweep_leases(&self) -> Vec<(ObjectId, BlockId)> {
        let now = self.shared.now_ms();
        let expired = {
            let mut policy = self.shared.policy.lock();
            let expired = policy.expire_leases(now);
            for &(object, block) in &expired {
                self.shared.trace.emit(
                    CLIENT_PROCESS,
                    EventKind::LockReleased {
                        object,
                        block,
                        cause: ReleaseCause::LeaseExpiry,
                    },
                );
            }
            expired
        };
        self.shared
            .counters
            .leases_expired
            .fetch_add(expired.len() as u64, Ordering::Relaxed);
        expired
    }

    /// Advances the manual lease clock by `ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics unless the cluster was built with
    /// [`ClusterBuilder::manual_clock`].
    pub fn advance_clock(&self, ms: u64) {
        match &self.shared.clock {
            RuntimeClock::Manual(t) => {
                t.fetch_add(ms, Ordering::Relaxed);
                // the jump is instantaneous for the workers: credit every
                // live node with the beats it would have produced across it
                // (a crashed node's silence is exactly what must remain)
                self.shared.refresh_beats();
            }
            RuntimeClock::Wall(_) => {
                panic!("advance_clock requires ClusterBuilder::manual_clock")
            }
        }
    }

    /// Stops all node threads and waits for them. Pending end-requests
    /// already queued are flushed (workers drain their queues, answering
    /// any still-waiting callers with [`RuntimeError::ShuttingDown`]); once
    /// the workers are joined, further sends fail explicitly instead of
    /// queueing into dead channels. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        if self.shared.closing.swap(true, Ordering::AcqRel) {
            return;
        }
        // raw senders: Shutdown must be deliverable through full inboxes
        for i in 0..self.shared.mesh.peers() {
            let _ = self
                .shared
                .mesh
                .sender(i)
                .send(Envelope::untraced(Message::Shutdown));
        }
        for handle in self.handles.lock().iter_mut().filter_map(Option::take) {
            let _ = handle.join();
        }
        if let Some(monitor) = self.monitor.lock().take() {
            let _ = monitor.join();
        }
        self.shared.mesh.shutdown();
        self.shared.down.store(true, Ordering::Release);
    }

    fn check_node(&self, node: NodeId) -> Result<(), RuntimeError> {
        if node.index() < self.shared.mesh.peers() as usize {
            Ok(())
        } else {
            Err(RuntimeError::UnknownNode(node))
        }
    }

    fn check_live(&self) -> Result<(), RuntimeError> {
        if self.shared.is_closing() {
            Err(RuntimeError::ShuttingDown)
        } else {
            Ok(())
        }
    }

    /// Waits for a reply under the call deadline. The outer `Result` is the
    /// transport's verdict (timeout / shutdown), the inner one the reply.
    fn await_reply<T>(
        &self,
        rx: &Receiver<Result<T, RuntimeError>>,
    ) -> Result<Result<T, RuntimeError>, RuntimeError> {
        let timeout = self.shared.call_timeout;
        match rx.recv_timeout(timeout) {
            Ok(res) => Ok(res),
            // A disconnect outside shutdown means the worker crashed while
            // holding our reply channel — same contract as a timeout.
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                self.shared
                    .counters
                    .timeouts
                    .fetch_add(1, Ordering::Relaxed);
                if self.shared.is_closing() {
                    Err(RuntimeError::ShuttingDown)
                } else {
                    Err(RuntimeError::Timeout {
                        waited_ms: timeout.as_millis() as u64,
                    })
                }
            }
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes())
            .field("objects", &self.shared.directory.read().len())
            .finish()
    }
}

/// An open move-block (§2.3). Dropping it issues the `end`-request — and,
/// for [`Cluster::visit_block`], the migrate-back.
#[derive(Debug)]
pub struct MoveGuard<'c> {
    cluster: &'c Cluster,
    object: ObjectId,
    block: BlockId,
    /// The requester's node (where the object was moved to).
    from: NodeId,
    context: Option<AllianceId>,
    granted: bool,
    migrate_back: Option<NodeId>,
    ended: bool,
}

impl MoveGuard<'_> {
    /// Whether the move was granted (vs denied by a conflicting holder).
    #[must_use]
    pub fn granted(&self) -> bool {
        self.granted
    }

    /// The object this block works on.
    #[must_use]
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// Ends the block explicitly (equivalent to dropping the guard).
    pub fn end(mut self) {
        let _ = self.finish();
    }

    /// Ends the block, surfacing whether the end-request could be sent —
    /// `Err(ShuttingDown)` when the cluster's workers are already gone (a
    /// plain drop swallows that; under leases the lock still expires).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ShuttingDown`] if the end-request had no live
    /// cluster to go to.
    pub fn try_end(mut self) -> Result<(), RuntimeError> {
        self.finish()
    }

    fn finish(&mut self) -> Result<(), RuntimeError> {
        if self.ended {
            return Ok(());
        }
        self.ended = true;
        let shared = &self.cluster.shared;
        let mut sent = Ok(());
        if let Some(node) = shared.directory_get(self.object) {
            sent = shared.send_from(
                None,
                node,
                Message::EndRequest {
                    object: self.object,
                    block: self.block,
                    from: self.from,
                    was_granted: self.granted,
                    context: self.context,
                    hops: MAX_HOPS,
                },
            );
        }
        if let Some(origin) = self.migrate_back.take() {
            // the visit's migrate-back: an ordinary (best-effort) move
            if let Ok(guard) = self
                .cluster
                .move_block_in(self.object, origin, self.context)
            {
                let mut guard = guard;
                // immediately release: the visit's return is not a block
                let _ = guard.finish();
            }
        }
        sent
    }
}

impl Drop for MoveGuard<'_> {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}
