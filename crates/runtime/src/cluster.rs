//! The cluster facade: public API over the node workers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use oml_check::event::{EventKind, ReleaseCause, TraceEvent, CLIENT_PROCESS};
use oml_core::alliance::AllianceRegistry;
use oml_core::attach::{AttachOutcome, AttachmentGraph, AttachmentMode};
use oml_core::error::AttachError;
use oml_core::ids::{AllianceId, BlockId, NodeId, ObjectId};
use oml_core::object::Mobility;
use oml_core::policy::{MovePolicy, PolicyKind};

use crate::error::RuntimeError;
use crate::fault::{self, Delivery, FaultInjector, FaultPlan};
use crate::message::{Envelope, Message, MAX_HOPS};
use crate::node::NodeWorker;
use crate::object::{Delinearizer, MobileObject, TypeRegistry};
use crate::trace::{OrderedMutex, OrderedRwLock, TraceCollector};

/// Monotone activity counters, readable while the cluster runs.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) invocations: AtomicU64,
    pub(crate) moves_granted: AtomicU64,
    pub(crate) moves_denied: AtomicU64,
    pub(crate) objects_migrated: AtomicU64,
    pub(crate) forwards: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) leases_expired: AtomicU64,
}

/// A point-in-time snapshot of a cluster's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterStats {
    /// Invocations executed (at any node).
    pub invocations: u64,
    /// Move-requests granted.
    pub moves_granted: u64,
    /// Move-requests denied.
    pub moves_denied: u64,
    /// Objects shipped between nodes (closure members count individually).
    pub objects_migrated: u64,
    /// Messages forwarded because their object had moved on.
    pub forwards: u64,
    /// Blocking client calls whose deadline elapsed (per attempt).
    pub timeouts: u64,
    /// Invocation attempts re-sent after a timeout.
    pub retries: u64,
    /// Placement locks released by lease expiry (the recovery path).
    pub leases_expired: u64,
}

/// The cluster's notion of lease time: wall-clock milliseconds since build,
/// or a hand-advanced counter for deterministic tests.
pub(crate) enum RuntimeClock {
    Wall(Instant),
    Manual(AtomicU64),
}

/// One object stranded by a crashed worker: its home node, identity, and
/// live instance, parked until that node restarts.
pub(crate) type StashedObject = (NodeId, ObjectId, Box<dyn MobileObject>);

/// State shared by every node worker and the cluster facade.
pub(crate) struct Shared {
    senders: Vec<Sender<Envelope>>,
    /// Kept so crashed nodes can be restarted on a clone of their receiver
    /// (and so queued messages survive a crash instead of disconnecting).
    receivers: Vec<Receiver<Envelope>>,
    directory: OrderedRwLock<HashMap<ObjectId, NodeId>>,
    mobility: OrderedRwLock<HashMap<ObjectId, Mobility>>,
    pub(crate) policy: OrderedMutex<Box<dyn MovePolicy>>,
    pub(crate) attachments: OrderedMutex<AttachmentGraph>,
    pub(crate) alliances: OrderedMutex<AllianceRegistry>,
    pub(crate) registry: TypeRegistry,
    pub(crate) counters: Counters,
    pub(crate) injector: FaultInjector,
    /// Objects stranded by a crashed worker, waiting for its restart.
    pub(crate) stash: OrderedMutex<Vec<StashedObject>>,
    pub(crate) clock: RuntimeClock,
    /// Protocol trace collection (disabled unless built with
    /// [`ClusterBuilder::trace`]).
    pub(crate) trace: TraceCollector,
    call_timeout: Duration,
    invoke_retries: u32,
    /// SplitMix64 state for retry-backoff jitter (seeded from the fault
    /// plan, so even the jitter is reproducible).
    jitter: OrderedMutex<u64>,
    next_object: AtomicU32,
    next_block: AtomicU32,
    /// Shutdown has been initiated: new client operations are refused, but
    /// sends still flow so queued end-requests can be flushed.
    closing: AtomicBool,
    /// Workers have been joined: sends now fail with `ShuttingDown` instead
    /// of silently queueing into dead channels.
    down: AtomicBool,
}

impl Shared {
    /// Routes one message to `to`, applying the fault plan. `from` is the
    /// sending node, or `None` for the client facade.
    ///
    /// Control messages (invocations, move-requests, end-requests) are
    /// subject to drops, duplicates, delays and partitions; state transfer
    /// (`Create`/`Install`/`Surrender`) and control sentinels are always
    /// reliable — see [`crate::fault`] for the model.
    ///
    /// A faithfully *lost* message still returns `Ok` (the sender cannot
    /// observe a drop — that is what deadlines are for); `Err(ShuttingDown)`
    /// means the cluster's workers are gone and the message can never be
    /// processed.
    pub(crate) fn send_from(
        &self,
        from: Option<NodeId>,
        to: NodeId,
        msg: Message,
    ) -> Result<(), RuntimeError> {
        if self.down.load(Ordering::Acquire) {
            return Err(RuntimeError::ShuttingDown);
        }
        let from_raw = from.map_or(fault::CLIENT, NodeId::as_u32);
        let faultable = matches!(
            msg,
            Message::Invoke { .. } | Message::MoveRequest { .. } | Message::EndRequest { .. }
        );
        if !faultable {
            let env = self.trace_envelope(from_raw, to, msg);
            return self.senders[to.index()]
                .send(env)
                .map_err(|_| RuntimeError::ShuttingDown);
        }
        let is_end = matches!(msg, Message::EndRequest { .. });
        match self
            .injector
            .decide(from_raw, to.as_u32(), is_end, &format!("{msg:?}"))
        {
            Delivery::Drop => Ok(()),
            Delivery::Deliver { copies, delay_ms } => {
                let mut msgs = Vec::with_capacity(copies as usize);
                if copies > 1 {
                    if let Some(dup) = clone_control(&msg) {
                        msgs.push(self.trace_envelope(from_raw, to, dup));
                    }
                }
                msgs.push(self.trace_envelope(from_raw, to, msg));
                let tx = self.senders[to.index()].clone();
                if delay_ms > 0 {
                    // deliver later from a detached thread; a message landing
                    // after shutdown sits in a queue nobody reads — harmless
                    std::thread::spawn(move || {
                        std::thread::sleep(Duration::from_millis(delay_ms));
                        for m in msgs {
                            let _ = tx.send(m);
                        }
                    });
                } else {
                    for m in msgs {
                        let _ = tx.send(m);
                    }
                }
                Ok(())
            }
        }
    }

    /// Wraps a message for the wire, assigning it a trace id and emitting
    /// the matching `Send` event in the sender's program order. A duplicated
    /// message passes through twice and gets two ids — two physical copies,
    /// two sends, exactly what the happens-before construction expects.
    fn trace_envelope(&self, from: u32, to: NodeId, msg: Message) -> Envelope {
        if !self.trace.is_enabled() {
            return Envelope::untraced(msg);
        }
        let msg_id = self.trace.next_msg_id();
        self.trace.emit(
            from,
            EventKind::Send {
                msg_id,
                to: to.as_u32(),
                desc: format!("{msg:?}"),
            },
        );
        Envelope {
            trace_id: msg_id,
            msg,
        }
    }

    pub(crate) fn directory_get(&self, object: ObjectId) -> Option<NodeId> {
        self.directory.read().get(&object).copied()
    }

    pub(crate) fn directory_set(&self, object: ObjectId, node: NodeId) {
        self.directory.write().insert(object, node);
    }

    pub(crate) fn is_movable(&self, object: ObjectId) -> bool {
        self.mobility
            .read()
            .get(&object)
            .copied()
            .unwrap_or_default()
            .is_movable()
    }

    /// Milliseconds on the cluster's lease clock.
    pub(crate) fn now_ms(&self) -> u64 {
        match &self.clock {
            RuntimeClock::Wall(epoch) => epoch.elapsed().as_millis() as u64,
            RuntimeClock::Manual(t) => t.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn is_closing(&self) -> bool {
        self.closing.load(Ordering::Acquire)
    }

    fn next_jitter_ms(&self, bound_ms: u64) -> u64 {
        let mut state = self.jitter.lock();
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = *state;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x % bound_ms.max(1)
    }
}

/// Clones the faultable control messages (the only ones that can be
/// duplicated); state transfer is never cloned.
fn clone_control(msg: &Message) -> Option<Message> {
    match msg {
        Message::Invoke {
            object,
            method,
            payload,
            hops,
            reply,
        } => Some(Message::Invoke {
            object: *object,
            method: method.clone(),
            payload: payload.clone(),
            hops: *hops,
            reply: reply.clone(),
        }),
        Message::MoveRequest {
            object,
            to,
            block,
            context,
            hops,
            expires,
            reply,
        } => Some(Message::MoveRequest {
            object: *object,
            to: *to,
            block: *block,
            context: *context,
            hops: *hops,
            expires: *expires,
            reply: reply.clone(),
        }),
        Message::EndRequest {
            object,
            block,
            from,
            was_granted,
            context,
            hops,
        } => Some(Message::EndRequest {
            object: *object,
            block: *block,
            from: *from,
            was_granted: *was_granted,
            context: *context,
            hops: *hops,
        }),
        _ => None,
    }
}

/// Configures a [`Cluster`].
///
/// See the crate-level documentation for a full example.
#[derive(Debug)]
pub struct ClusterBuilder {
    nodes: u32,
    policy: PolicyKind,
    custom_policy: Option<Box<dyn MovePolicy>>,
    attachment_mode: AttachmentMode,
    fault_plan: Option<FaultPlan>,
    call_timeout: Duration,
    invoke_retries: u32,
    lease_ms: Option<u64>,
    manual_clock: bool,
    trace: bool,
}

impl ClusterBuilder {
    /// Number of nodes (worker threads). Defaults to 2.
    #[must_use]
    pub fn nodes(mut self, n: u32) -> Self {
        assert!(n > 0, "a cluster needs at least one node");
        self.nodes = n;
        self
    }

    /// The migration policy interpreting `move()`-requests. Defaults to
    /// transient placement.
    #[must_use]
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self.custom_policy = None;
        self
    }

    /// Installs a user-defined migration policy (any
    /// [`oml_core::policy::MovePolicy`]) instead of a built-in.
    #[must_use]
    pub fn policy_custom(mut self, policy: impl MovePolicy + 'static) -> Self {
        self.custom_policy = Some(Box::new(policy));
        self
    }

    /// The attachment semantics. Defaults to unrestricted.
    #[must_use]
    pub fn attachment_mode(mut self, mode: AttachmentMode) -> Self {
        self.attachment_mode = mode;
        self
    }

    /// Installs a seeded fault plan: drops, delays, duplicates and
    /// partitions for control messages. Without one the cluster is
    /// fault-free (but partitions and crashes are still available).
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The deadline for each blocking client call (per attempt). Defaults
    /// to 5 seconds.
    ///
    /// # Panics
    ///
    /// Panics on a zero timeout.
    #[must_use]
    pub fn call_timeout(mut self, timeout: Duration) -> Self {
        assert!(!timeout.is_zero(), "a zero call timeout cannot succeed");
        self.call_timeout = timeout;
        self
    }

    /// How many times a timed-out invocation is re-sent (invocations are
    /// the only idempotent-by-contract call; moves and creates are never
    /// retried). Defaults to 2.
    #[must_use]
    pub fn invoke_retries(mut self, retries: u32) -> Self {
        self.invoke_retries = retries;
        self
    }

    /// Makes placement locks leases expiring after `ttl_ms` of inactivity
    /// (see [`oml_core::lease::LeaseTable`]). Without this, locks are held
    /// until their end-request arrives — forever, if it never does.
    ///
    /// # Panics
    ///
    /// Panics if `ttl_ms` is zero.
    #[must_use]
    pub fn lease_ms(mut self, ttl_ms: u64) -> Self {
        assert!(ttl_ms > 0, "a lease needs a positive duration");
        self.lease_ms = Some(ttl_ms);
        self
    }

    /// Replaces the wall-clock lease clock with a counter advanced only by
    /// [`Cluster::advance_clock`] — deterministic lease expiry for tests.
    #[must_use]
    pub fn manual_clock(mut self) -> Self {
        self.manual_clock = true;
        self
    }

    /// Enables protocol trace collection: every node (and the client
    /// facade) records the structured events `oml-check` replays —
    /// sends/receives with message ids, residency transitions, move
    /// decisions, lock and lease activity, closure transfers, crashes.
    /// Drain the trace with [`Cluster::take_trace`] and feed it to
    /// [`oml_check::check_trace`].
    #[must_use]
    pub fn trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Spawns the node threads and returns the running cluster.
    #[must_use]
    pub fn build(self) -> Cluster {
        let mut senders = Vec::with_capacity(self.nodes as usize);
        let mut receivers = Vec::with_capacity(self.nodes as usize);
        for _ in 0..self.nodes {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let policy = match (self.custom_policy, self.lease_ms) {
            (Some(p), _) => p,
            (None, Some(ttl)) => self.policy.build_with_lease(ttl),
            (None, None) => self.policy.build(),
        };
        let plan = self.fault_plan.unwrap_or_else(|| FaultPlan::seeded(0));
        let jitter_seed = plan.seed();
        let shared = Arc::new(Shared {
            senders,
            receivers,
            directory: OrderedRwLock::new("shared.directory", HashMap::new()),
            mobility: OrderedRwLock::new("shared.mobility", HashMap::new()),
            policy: OrderedMutex::new("shared.policy", policy),
            attachments: OrderedMutex::new(
                "shared.attachments",
                AttachmentGraph::new(self.attachment_mode),
            ),
            alliances: OrderedMutex::new("shared.alliances", AllianceRegistry::new()),
            registry: TypeRegistry::new(),
            counters: Counters::default(),
            injector: FaultInjector::new(plan),
            stash: OrderedMutex::new("shared.stash", Vec::new()),
            clock: if self.manual_clock {
                RuntimeClock::Manual(AtomicU64::new(0))
            } else {
                RuntimeClock::Wall(Instant::now())
            },
            trace: TraceCollector::new(self.trace),
            call_timeout: self.call_timeout,
            invoke_retries: self.invoke_retries,
            jitter: OrderedMutex::new("shared.jitter", jitter_seed),
            next_object: AtomicU32::new(0),
            next_block: AtomicU32::new(0),
            closing: AtomicBool::new(false),
            down: AtomicBool::new(false),
        });
        let handles = (0..self.nodes as usize)
            .map(|i| Some(spawn_worker(&shared, NodeId::new(i as u32))))
            .collect();
        Cluster {
            shared,
            handles: OrderedMutex::new("cluster.handles", handles),
        }
    }
}

fn spawn_worker(shared: &Arc<Shared>, id: NodeId) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    let rx = shared.receivers[id.index()].clone();
    std::thread::Builder::new()
        .name(format!("oml-node-{}", id.index()))
        .spawn(move || NodeWorker::new(id, shared, rx).run())
        .expect("spawn node worker")
}

/// A running multi-node object system.
pub struct Cluster {
    shared: Arc<Shared>,
    /// One slot per node; `None` while that node is crashed.
    handles: OrderedMutex<Vec<Option<JoinHandle<()>>>>,
}

impl Cluster {
    /// Starts configuring a cluster.
    #[must_use]
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder {
            nodes: 2,
            policy: PolicyKind::TransientPlacement,
            custom_policy: None,
            attachment_mode: AttachmentMode::Unrestricted,
            fault_plan: None,
            call_timeout: Duration::from_secs(5),
            invoke_retries: 2,
            lease_ms: None,
            manual_clock: false,
            trace: false,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> u32 {
        self.shared.senders.len() as u32
    }

    /// Registers the delinearizer for a type tag. Must happen before any
    /// object of that type migrates (migrations of unregistered types are
    /// refused rather than losing the object).
    pub fn register_type(&self, tag: &str, f: Delinearizer) {
        self.shared.registry.register(tag, f);
    }

    /// Creates `instance` at `node` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownNode`] for an out-of-range node,
    /// [`RuntimeError::ShuttingDown`] if the cluster is stopping, and
    /// [`RuntimeError::Timeout`] when the deadline elapses (e.g. the node
    /// is crashed).
    pub fn create(
        &self,
        node: NodeId,
        instance: Box<dyn MobileObject>,
    ) -> Result<ObjectId, RuntimeError> {
        self.check_node(node)?;
        self.check_live()?;
        let object = ObjectId::new(self.shared.next_object.fetch_add(1, Ordering::Relaxed));
        // the directory knows the object before the Create lands, so early
        // invocations park at the right node
        self.shared.directory_set(object, node);
        let (reply, rx) = unbounded();
        self.shared.send_from(
            None,
            node,
            Message::Create {
                object,
                instance,
                reply,
            },
        )?;
        self.await_reply(&rx)??;
        Ok(object)
    }

    /// Invokes `method` on the object, wherever it currently is. Blocks
    /// until the result message returns or the deadline elapses; a timed-out
    /// attempt is retried (with exponential backoff and seeded jitter, and a
    /// fresh directory lookup per attempt) up to
    /// [`ClusterBuilder::invoke_retries`] times — an invocation that timed
    /// out may still have executed, so callers get at-least-once semantics
    /// under faults.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`]: unknown object, method failure,
    /// forwarding exhaustion, shutdown, or [`RuntimeError::Timeout`] once
    /// every attempt's deadline elapsed.
    pub fn invoke(
        &self,
        object: ObjectId,
        method: &str,
        payload: &[u8],
    ) -> Result<Vec<u8>, RuntimeError> {
        self.check_live()?;
        let timeout = self.shared.call_timeout;
        let attempts = self.shared.invoke_retries.saturating_add(1);
        let mut waited_ms = 0u64;
        let mut backoff_ms = 2u64;
        for attempt in 0..attempts {
            // re-resolve: the object may have moved (or its node restarted)
            // since the lost attempt
            let node = self
                .shared
                .directory_get(object)
                .ok_or(RuntimeError::UnknownObject(object))?;
            let (reply, rx) = unbounded();
            self.shared.send_from(
                None,
                node,
                Message::Invoke {
                    object,
                    method: method.to_owned(),
                    payload: Bytes::copy_from_slice(payload),
                    hops: MAX_HOPS,
                    reply,
                },
            )?;
            match rx.recv_timeout(timeout) {
                Ok(res) => return Ok(res?.to_vec()),
                Err(_) => {
                    // Timeout, or the worker crashed holding our reply
                    // channel — both mean "no answer within the deadline"
                    waited_ms += timeout.as_millis() as u64;
                    self.shared
                        .counters
                        .timeouts
                        .fetch_add(1, Ordering::Relaxed);
                    if attempt + 1 < attempts {
                        self.shared.counters.retries.fetch_add(1, Ordering::Relaxed);
                        let jitter = self.shared.next_jitter_ms(backoff_ms);
                        std::thread::sleep(Duration::from_millis(backoff_ms + jitter));
                        backoff_ms = backoff_ms.saturating_mul(2);
                    }
                }
            }
        }
        if self.shared.is_closing() {
            Err(RuntimeError::ShuttingDown)
        } else {
            Err(RuntimeError::Timeout { waited_ms })
        }
    }

    /// Opens a move-block: requests migration of `object` (and its
    /// attachment closure) to `to` and returns an RAII guard whose `Drop`
    /// issues the `end`-request. Check [`MoveGuard::granted`] — under
    /// transient placement a concurrent holder leads to a denial, in which
    /// case invocations simply stay remote.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`].
    pub fn move_block(&self, object: ObjectId, to: NodeId) -> Result<MoveGuard<'_>, RuntimeError> {
        self.move_block_in(object, to, None)
    }

    /// Like [`Cluster::move_block`], with an explicit cooperation context:
    /// the migration drags the A-transitive closure of that alliance (§3.4).
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`].
    pub fn move_block_in(
        &self,
        object: ObjectId,
        to: NodeId,
        context: Option<AllianceId>,
    ) -> Result<MoveGuard<'_>, RuntimeError> {
        self.check_node(to)?;
        self.check_live()?;
        let node = self
            .shared
            .directory_get(object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        let block = BlockId::new(self.shared.next_block.fetch_add(1, Ordering::Relaxed));
        self.shared.trace.emit(
            CLIENT_PROCESS,
            EventKind::MoveRequested { object, to, block },
        );
        let (reply, rx) = unbounded();
        self.shared.send_from(
            None,
            node,
            Message::MoveRequest {
                object,
                to,
                block,
                context,
                hops: MAX_HOPS,
                // the request carries the same deadline await_reply enforces:
                // a node that sees it later than this denies it, so a move
                // this caller gave up on can never be granted behind its back
                expires: Instant::now() + self.shared.call_timeout,
                reply,
            },
        )?;
        // one attempt only: a move is not idempotent (re-sending could
        // grant twice under two blocks)
        let granted = self.await_reply(&rx)??;
        Ok(MoveGuard {
            cluster: self,
            object,
            block,
            from: to,
            context,
            granted,
            migrate_back: None,
            ended: false,
        })
    }

    /// A `visit`-block (§2.3): a move combined with a migrate-back — on drop
    /// the guard issues the end-request and sends the object home.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`].
    pub fn visit_block(&self, object: ObjectId, to: NodeId) -> Result<MoveGuard<'_>, RuntimeError> {
        let origin = self.shared.directory_get(object);
        let mut guard = self.move_block_in(object, to, None)?;
        if guard.granted {
            guard.migrate_back = origin.filter(|&o| o != to);
        }
        Ok(guard)
    }

    /// Executes an operation declared with `move`/`visit` parameter modes
    /// (§2.3, Fig. 1): call-by-move / call-by-visit.
    ///
    /// Each `move` argument is migrated to the callee's node for the
    /// duration of the invocation and stays there; each `visit` argument
    /// migrates back afterwards; `ref` arguments are untouched. Whether a
    /// parameter migration is honoured is, as always, up to the installed
    /// policy — under transient placement a locked argument simply stays
    /// remote and the call proceeds anyway.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ArityMismatch`] if `args` does not match the
    /// declaration, plus everything [`Cluster::invoke`] can report.
    pub fn invoke_with_decl(
        &self,
        callee: ObjectId,
        decl: &oml_core::lang::OperationDecl,
        args: &[ObjectId],
        payload: &[u8],
    ) -> Result<Vec<u8>, RuntimeError> {
        use oml_core::lang::ParamMode;

        if args.len() != decl.params.len() {
            return Err(RuntimeError::ArityMismatch {
                expected: decl.params.len(),
                got: args.len(),
            });
        }
        let callee_node = self
            .shared
            .directory_get(callee)
            .ok_or(RuntimeError::UnknownObject(callee))?;

        // open the parameter move-blocks; the guards end them (and run the
        // visit migrate-backs) when the invocation completes
        let mut guards = Vec::new();
        for (&arg, mode) in args.iter().zip(decl.modes()) {
            match mode {
                ParamMode::Ref => {}
                ParamMode::Move => guards.push(self.move_block(arg, callee_node)?),
                ParamMode::Visit => guards.push(self.visit_block(arg, callee_node)?),
            }
        }
        let result = self.invoke(callee, &decl.name, payload);
        drop(guards);
        result
    }

    /// Where the object currently is (per the directory).
    #[must_use]
    pub fn location_of(&self, object: ObjectId) -> Option<NodeId> {
        self.shared.directory_get(object)
    }

    /// A snapshot of every object's current location, in id order — the
    /// operator's view of the placement the policies produced.
    #[must_use]
    pub fn placement_snapshot(&self) -> Vec<(ObjectId, NodeId)> {
        let dir = self.shared.directory.read();
        let mut v: Vec<(ObjectId, NodeId)> = dir.iter().map(|(&o, &n)| (o, n)).collect();
        v.sort_unstable_by_key(|&(o, _)| o);
        v
    }

    /// How many objects each node currently hosts (index = node id) — a
    /// quick load-balance view.
    #[must_use]
    pub fn occupancy(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.shared.senders.len()];
        for (_, node) in self.placement_snapshot() {
            counts[node.index()] += 1;
        }
        counts
    }

    /// A snapshot of the cluster's activity counters.
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        use std::sync::atomic::Ordering::Relaxed;
        let c = &self.shared.counters;
        ClusterStats {
            invocations: c.invocations.load(Relaxed),
            moves_granted: c.moves_granted.load(Relaxed),
            moves_denied: c.moves_denied.load(Relaxed),
            objects_migrated: c.objects_migrated.load(Relaxed),
            forwards: c.forwards.load(Relaxed),
            timeouts: c.timeouts.load(Relaxed),
            retries: c.retries.load(Relaxed),
            leases_expired: c.leases_expired.load(Relaxed),
        }
    }

    /// Whether the object is currently resident at `node`.
    #[must_use]
    pub fn is_resident(&self, object: ObjectId, node: NodeId) -> bool {
        self.location_of(object) == Some(node)
    }

    /// `fix()` — transiently pins the object (§2.2).
    pub fn fix(&self, object: ObjectId) {
        self.shared
            .mobility
            .write()
            .entry(object)
            .or_default()
            .fix();
    }

    /// `unfix()` — lifts a transient fix.
    pub fn unfix(&self, object: ObjectId) {
        self.shared
            .mobility
            .write()
            .entry(object)
            .or_default()
            .unfix();
    }

    /// `refix()` — re-establishes a transient fix.
    pub fn refix(&self, object: ObjectId) {
        self.shared
            .mobility
            .write()
            .entry(object)
            .or_default()
            .refix();
    }

    /// `attach(object, to)` in an optional cooperation context.
    ///
    /// # Errors
    ///
    /// Propagates [`AttachError`] (self-attachment, unknown alliance,
    /// non-member endpoints).
    pub fn attach(
        &self,
        object: ObjectId,
        to: ObjectId,
        context: Option<AllianceId>,
    ) -> Result<AttachOutcome, AttachError> {
        let outcome = {
            let alliances = self.shared.alliances.lock();
            self.shared
                .attachments
                .lock()
                .attach_checked(object, to, context, &alliances)
        };
        if outcome.is_ok() {
            self.shared
                .trace
                .emit(CLIENT_PROCESS, EventKind::Attach { a: object, b: to });
        }
        outcome
    }

    /// `detach(object, to)`; returns whether an edge was removed.
    pub fn detach(&self, object: ObjectId, to: ObjectId) -> bool {
        let removed = self.shared.attachments.lock().detach(object, to);
        if removed {
            self.shared
                .trace
                .emit(CLIENT_PROCESS, EventKind::Detach { a: object, b: to });
        }
        removed
    }

    /// Creates an alliance.
    pub fn create_alliance(&self, name: &str) -> AllianceId {
        self.shared.alliances.lock().create(name)
    }

    /// Adds an object to an alliance.
    ///
    /// # Errors
    ///
    /// Propagates [`oml_core::error::AllianceError`].
    pub fn join_alliance(
        &self,
        alliance: AllianceId,
        object: ObjectId,
    ) -> Result<(), oml_core::error::AllianceError> {
        self.shared.alliances.lock().join(alliance, object)
    }

    /// Crashes `node`: its worker stashes the hosted objects (they survive
    /// the "machine", like disk state) and exits without draining its
    /// queue. Messages keep queueing for the node and are processed after
    /// [`Cluster::restart_node`]; until then, calls against its objects
    /// time out. Idempotent — crashing a crashed node is a no-op.
    ///
    /// Placement locks on the stashed objects were *volatile* state of the
    /// dead host: the blocks holding them ran there and their end-requests
    /// can never arrive, so the policy releases them here instead of leaving
    /// the objects locked until lease expiry (or forever, without a TTL).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownNode`] for an out-of-range node.
    pub fn crash_node(&self, node: NodeId) -> Result<(), RuntimeError> {
        self.check_node(node)?;
        let handle = self.handles.lock()[node.index()].take();
        let Some(handle) = handle else {
            return Ok(());
        };
        // the crash command bypasses the injector: it is scripted, not a
        // message fault
        let _ = self.shared.senders[node.index()].send(Envelope::untraced(Message::Crash));
        let _ = handle.join();
        self.shared.injector.note(format!("crash {node}"));
        self.shared
            .trace
            .emit(CLIENT_PROCESS, EventKind::Crash { node });
        // the worker has stashed its objects (join() ordered that before
        // this read); release the locks their dead blocks held
        let stranded: Vec<ObjectId> = {
            let stash = self.shared.stash.lock();
            stash
                .iter()
                .filter(|(home, _, _)| *home == node)
                .map(|&(_, object, _)| object)
                .collect()
        };
        if !stranded.is_empty() {
            // emitted under the policy guard: lock-state events are ordered
            // by the policy mutex so the trace mirrors the lock table
            let mut policy = self.shared.policy.lock();
            for (object, block) in policy.release_locks_for(&stranded) {
                self.shared.trace.emit(
                    CLIENT_PROCESS,
                    EventKind::LockReleased {
                        object,
                        block,
                        cause: ReleaseCause::Crash,
                    },
                );
            }
        }
        Ok(())
    }

    /// Restarts a crashed node: a fresh worker resumes on the node's
    /// (still-queued) channel and reclaims the stashed objects. Idempotent —
    /// restarting a running node is a no-op.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownNode`] for an out-of-range node.
    pub fn restart_node(&self, node: NodeId) -> Result<(), RuntimeError> {
        self.check_node(node)?;
        let mut handles = self.handles.lock();
        if handles[node.index()].is_some() {
            return Ok(());
        }
        self.shared.injector.note(format!("restart {node}"));
        self.shared
            .trace
            .emit(CLIENT_PROCESS, EventKind::Restart { node });
        handles[node.index()] = Some(spawn_worker(&self.shared, node));
        Ok(())
    }

    /// Severs the link between two nodes (both directions) for control
    /// messages until [`Cluster::heal`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownNode`] for an out-of-range node.
    pub fn partition(&self, a: NodeId, b: NodeId) -> Result<(), RuntimeError> {
        self.check_node(a)?;
        self.check_node(b)?;
        self.shared.injector.partition(a, b);
        Ok(())
    }

    /// Heals a partition created by [`Cluster::partition`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownNode`] for an out-of-range node.
    pub fn heal(&self, a: NodeId, b: NodeId) -> Result<(), RuntimeError> {
        self.check_node(a)?;
        self.check_node(b)?;
        self.shared.injector.heal(a, b);
        Ok(())
    }

    /// Heals every partition.
    pub fn heal_all(&self) {
        self.shared.injector.heal_all();
    }

    /// The fault events injected so far (drops, duplicates, delays,
    /// partitions, crashes, restarts) in decision order. With a seeded
    /// plan and a sequential caller, identical runs produce identical
    /// traces.
    #[must_use]
    pub fn fault_trace(&self) -> Vec<String> {
        self.shared.injector.trace()
    }

    /// Whether protocol tracing is enabled ([`ClusterBuilder::trace`]).
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.shared.trace.is_enabled()
    }

    /// Drains the protocol trace collected so far — the structured event
    /// stream [`oml_check::check_trace`] verifies. Call after quiescing the
    /// cluster ([`Cluster::shutdown`]) for a complete picture; each process's
    /// slice of the returned vector is that process's program order.
    #[must_use]
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        self.shared.trace.take()
    }

    /// The placement locks the policy currently holds — for invariant
    /// checks ("no leaked locks after quiescence").
    #[must_use]
    pub fn held_locks(&self) -> Vec<(ObjectId, BlockId)> {
        self.shared.policy.lock().held_locks()
    }

    /// Forces a lease sweep at the current clock, returning the locks it
    /// expired. Workers sweep on their idle ticks anyway; this is for tests
    /// that want the sweep *now*.
    pub fn sweep_leases(&self) -> Vec<(ObjectId, BlockId)> {
        let now = self.shared.now_ms();
        let expired = {
            let mut policy = self.shared.policy.lock();
            let expired = policy.expire_leases(now);
            for &(object, block) in &expired {
                self.shared.trace.emit(
                    CLIENT_PROCESS,
                    EventKind::LockReleased {
                        object,
                        block,
                        cause: ReleaseCause::LeaseExpiry,
                    },
                );
            }
            expired
        };
        self.shared
            .counters
            .leases_expired
            .fetch_add(expired.len() as u64, Ordering::Relaxed);
        expired
    }

    /// Advances the manual lease clock by `ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics unless the cluster was built with
    /// [`ClusterBuilder::manual_clock`].
    pub fn advance_clock(&self, ms: u64) {
        match &self.shared.clock {
            RuntimeClock::Manual(t) => {
                t.fetch_add(ms, Ordering::Relaxed);
            }
            RuntimeClock::Wall(_) => {
                panic!("advance_clock requires ClusterBuilder::manual_clock")
            }
        }
    }

    /// Stops all node threads and waits for them. Pending end-requests
    /// already queued are flushed (workers drain their queues, answering
    /// any still-waiting callers with [`RuntimeError::ShuttingDown`]); once
    /// the workers are joined, further sends fail explicitly instead of
    /// queueing into dead channels. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        if self.shared.closing.swap(true, Ordering::AcqRel) {
            return;
        }
        for tx in &self.shared.senders {
            let _ = tx.send(Envelope::untraced(Message::Shutdown));
        }
        for handle in self.handles.lock().iter_mut().filter_map(Option::take) {
            let _ = handle.join();
        }
        self.shared.down.store(true, Ordering::Release);
    }

    fn check_node(&self, node: NodeId) -> Result<(), RuntimeError> {
        if node.index() < self.shared.senders.len() {
            Ok(())
        } else {
            Err(RuntimeError::UnknownNode(node))
        }
    }

    fn check_live(&self) -> Result<(), RuntimeError> {
        if self.shared.is_closing() {
            Err(RuntimeError::ShuttingDown)
        } else {
            Ok(())
        }
    }

    /// Waits for a reply under the call deadline. The outer `Result` is the
    /// transport's verdict (timeout / shutdown), the inner one the reply.
    fn await_reply<T>(
        &self,
        rx: &Receiver<Result<T, RuntimeError>>,
    ) -> Result<Result<T, RuntimeError>, RuntimeError> {
        let timeout = self.shared.call_timeout;
        match rx.recv_timeout(timeout) {
            Ok(res) => Ok(res),
            // A disconnect outside shutdown means the worker crashed while
            // holding our reply channel — same contract as a timeout.
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                self.shared
                    .counters
                    .timeouts
                    .fetch_add(1, Ordering::Relaxed);
                if self.shared.is_closing() {
                    Err(RuntimeError::ShuttingDown)
                } else {
                    Err(RuntimeError::Timeout {
                        waited_ms: timeout.as_millis() as u64,
                    })
                }
            }
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes())
            .field("objects", &self.shared.directory.read().len())
            .finish()
    }
}

/// An open move-block (§2.3). Dropping it issues the `end`-request — and,
/// for [`Cluster::visit_block`], the migrate-back.
#[derive(Debug)]
pub struct MoveGuard<'c> {
    cluster: &'c Cluster,
    object: ObjectId,
    block: BlockId,
    /// The requester's node (where the object was moved to).
    from: NodeId,
    context: Option<AllianceId>,
    granted: bool,
    migrate_back: Option<NodeId>,
    ended: bool,
}

impl MoveGuard<'_> {
    /// Whether the move was granted (vs denied by a conflicting holder).
    #[must_use]
    pub fn granted(&self) -> bool {
        self.granted
    }

    /// The object this block works on.
    #[must_use]
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// Ends the block explicitly (equivalent to dropping the guard).
    pub fn end(mut self) {
        let _ = self.finish();
    }

    /// Ends the block, surfacing whether the end-request could be sent —
    /// `Err(ShuttingDown)` when the cluster's workers are already gone (a
    /// plain drop swallows that; under leases the lock still expires).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ShuttingDown`] if the end-request had no live
    /// cluster to go to.
    pub fn try_end(mut self) -> Result<(), RuntimeError> {
        self.finish()
    }

    fn finish(&mut self) -> Result<(), RuntimeError> {
        if self.ended {
            return Ok(());
        }
        self.ended = true;
        let shared = &self.cluster.shared;
        let mut sent = Ok(());
        if let Some(node) = shared.directory_get(self.object) {
            sent = shared.send_from(
                None,
                node,
                Message::EndRequest {
                    object: self.object,
                    block: self.block,
                    from: self.from,
                    was_granted: self.granted,
                    context: self.context,
                    hops: MAX_HOPS,
                },
            );
        }
        if let Some(origin) = self.migrate_back.take() {
            // the visit's migrate-back: an ordinary (best-effort) move
            if let Ok(guard) = self
                .cluster
                .move_block_in(self.object, origin, self.context)
            {
                let mut guard = guard;
                // immediately release: the visit's return is not a block
                let _ = guard.finish();
            }
        }
        sent
    }
}

impl Drop for MoveGuard<'_> {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}
