//! The cluster facade: public API over the node workers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use oml_core::alliance::AllianceRegistry;
use oml_core::attach::{AttachOutcome, AttachmentGraph, AttachmentMode};
use oml_core::error::AttachError;
use oml_core::ids::{AllianceId, BlockId, NodeId, ObjectId};
use oml_core::object::Mobility;
use oml_core::policy::{MovePolicy, PolicyKind};
use parking_lot::{Mutex, RwLock};

use crate::error::RuntimeError;
use crate::message::{Message, MAX_HOPS};
use crate::node::NodeWorker;
use crate::object::{Delinearizer, MobileObject, TypeRegistry};

/// Monotone activity counters, readable while the cluster runs.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) invocations: std::sync::atomic::AtomicU64,
    pub(crate) moves_granted: std::sync::atomic::AtomicU64,
    pub(crate) moves_denied: std::sync::atomic::AtomicU64,
    pub(crate) objects_migrated: std::sync::atomic::AtomicU64,
    pub(crate) forwards: std::sync::atomic::AtomicU64,
}

/// A point-in-time snapshot of a cluster's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterStats {
    /// Invocations executed (at any node).
    pub invocations: u64,
    /// Move-requests granted.
    pub moves_granted: u64,
    /// Move-requests denied.
    pub moves_denied: u64,
    /// Objects shipped between nodes (closure members count individually).
    pub objects_migrated: u64,
    /// Messages forwarded because their object had moved on.
    pub forwards: u64,
}

/// State shared by every node worker and the cluster facade.
pub(crate) struct Shared {
    senders: Vec<Sender<Message>>,
    directory: RwLock<HashMap<ObjectId, NodeId>>,
    mobility: RwLock<HashMap<ObjectId, Mobility>>,
    pub(crate) policy: Mutex<Box<dyn MovePolicy>>,
    pub(crate) attachments: Mutex<AttachmentGraph>,
    pub(crate) alliances: Mutex<AllianceRegistry>,
    pub(crate) registry: TypeRegistry,
    pub(crate) counters: Counters,
    next_object: AtomicU32,
    next_block: AtomicU32,
    down: AtomicBool,
}

impl Shared {
    pub(crate) fn send(&self, node: NodeId, msg: Message) {
        if !self.down.load(Ordering::Acquire) {
            let _ = self.senders[node.index()].send(msg);
        }
    }

    pub(crate) fn directory_get(&self, object: ObjectId) -> Option<NodeId> {
        self.directory.read().get(&object).copied()
    }

    pub(crate) fn directory_set(&self, object: ObjectId, node: NodeId) {
        self.directory.write().insert(object, node);
    }

    pub(crate) fn is_movable(&self, object: ObjectId) -> bool {
        self.mobility
            .read()
            .get(&object)
            .copied()
            .unwrap_or_default()
            .is_movable()
    }
}

/// Configures a [`Cluster`].
///
/// See the crate-level documentation for a full example.
#[derive(Debug)]
pub struct ClusterBuilder {
    nodes: u32,
    policy: PolicyKind,
    custom_policy: Option<Box<dyn MovePolicy>>,
    attachment_mode: AttachmentMode,
}

impl ClusterBuilder {
    /// Number of nodes (worker threads). Defaults to 2.
    #[must_use]
    pub fn nodes(mut self, n: u32) -> Self {
        assert!(n > 0, "a cluster needs at least one node");
        self.nodes = n;
        self
    }

    /// The migration policy interpreting `move()`-requests. Defaults to
    /// transient placement.
    #[must_use]
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self.custom_policy = None;
        self
    }

    /// Installs a user-defined migration policy (any
    /// [`oml_core::policy::MovePolicy`]) instead of a built-in.
    #[must_use]
    pub fn policy_custom(mut self, policy: impl MovePolicy + 'static) -> Self {
        self.custom_policy = Some(Box::new(policy));
        self
    }

    /// The attachment semantics. Defaults to unrestricted.
    #[must_use]
    pub fn attachment_mode(mut self, mode: AttachmentMode) -> Self {
        self.attachment_mode = mode;
        self
    }

    /// Spawns the node threads and returns the running cluster.
    #[must_use]
    pub fn build(self) -> Cluster {
        let mut senders = Vec::with_capacity(self.nodes as usize);
        let mut receivers = Vec::with_capacity(self.nodes as usize);
        for _ in 0..self.nodes {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            senders,
            directory: RwLock::new(HashMap::new()),
            mobility: RwLock::new(HashMap::new()),
            policy: Mutex::new(
                self.custom_policy
                    .unwrap_or_else(|| self.policy.build()),
            ),
            attachments: Mutex::new(AttachmentGraph::new(self.attachment_mode)),
            alliances: Mutex::new(AllianceRegistry::new()),
            registry: TypeRegistry::new(),
            counters: Counters::default(),
            next_object: AtomicU32::new(0),
            next_block: AtomicU32::new(0),
            down: AtomicBool::new(false),
        });
        let handles = receivers
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let shared = Arc::clone(&shared);
                let id = NodeId::new(i as u32);
                std::thread::Builder::new()
                    .name(format!("oml-node-{i}"))
                    .spawn(move || NodeWorker::new(id, shared, rx).run())
                    .expect("spawn node worker")
            })
            .collect();
        Cluster {
            shared,
            handles: Mutex::new(handles),
        }
    }
}

/// A running multi-node object system.
pub struct Cluster {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Cluster {
    /// Starts configuring a cluster.
    #[must_use]
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder {
            nodes: 2,
            policy: PolicyKind::TransientPlacement,
            custom_policy: None,
            attachment_mode: AttachmentMode::Unrestricted,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> u32 {
        self.shared.senders.len() as u32
    }

    /// Registers the delinearizer for a type tag. Must happen before any
    /// object of that type migrates (migrations of unregistered types are
    /// refused rather than losing the object).
    pub fn register_type(&self, tag: &str, f: Delinearizer) {
        self.shared.registry.register(tag, f);
    }

    /// Creates `instance` at `node` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownNode`] for an out-of-range node and
    /// [`RuntimeError::ShuttingDown`] if the cluster is stopping.
    pub fn create(
        &self,
        node: NodeId,
        instance: Box<dyn MobileObject>,
    ) -> Result<ObjectId, RuntimeError> {
        self.check_node(node)?;
        let object = ObjectId::new(self.shared.next_object.fetch_add(1, Ordering::Relaxed));
        // the directory knows the object before the Create lands, so early
        // invocations park at the right node
        self.shared.directory_set(object, node);
        let (reply, rx) = unbounded();
        self.shared.send(
            node,
            Message::Create {
                object,
                instance,
                reply,
            },
        );
        rx.recv().map_err(|_| RuntimeError::ShuttingDown)??;
        Ok(object)
    }

    /// Invokes `method` on the object, wherever it currently is. Blocks
    /// until the result message returns.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`]: unknown object, method failure,
    /// forwarding exhaustion or shutdown.
    pub fn invoke(
        &self,
        object: ObjectId,
        method: &str,
        payload: &[u8],
    ) -> Result<Vec<u8>, RuntimeError> {
        let node = self
            .shared
            .directory_get(object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        let (reply, rx) = unbounded();
        self.shared.send(
            node,
            Message::Invoke {
                object,
                method: method.to_owned(),
                payload: Bytes::copy_from_slice(payload),
                hops: MAX_HOPS,
                reply,
            },
        );
        let bytes = rx.recv().map_err(|_| RuntimeError::ShuttingDown)??;
        Ok(bytes.to_vec())
    }

    /// Opens a move-block: requests migration of `object` (and its
    /// attachment closure) to `to` and returns an RAII guard whose `Drop`
    /// issues the `end`-request. Check [`MoveGuard::granted`] — under
    /// transient placement a concurrent holder leads to a denial, in which
    /// case invocations simply stay remote.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`].
    pub fn move_block(&self, object: ObjectId, to: NodeId) -> Result<MoveGuard<'_>, RuntimeError> {
        self.move_block_in(object, to, None)
    }

    /// Like [`Cluster::move_block`], with an explicit cooperation context:
    /// the migration drags the A-transitive closure of that alliance (§3.4).
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`].
    pub fn move_block_in(
        &self,
        object: ObjectId,
        to: NodeId,
        context: Option<AllianceId>,
    ) -> Result<MoveGuard<'_>, RuntimeError> {
        self.check_node(to)?;
        let node = self
            .shared
            .directory_get(object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        let block = BlockId::new(self.shared.next_block.fetch_add(1, Ordering::Relaxed));
        let (reply, rx) = unbounded();
        self.shared.send(
            node,
            Message::MoveRequest {
                object,
                to,
                block,
                context,
                hops: MAX_HOPS,
                reply,
            },
        );
        let granted = rx.recv().map_err(|_| RuntimeError::ShuttingDown)??;
        Ok(MoveGuard {
            cluster: self,
            object,
            block,
            from: to,
            context,
            granted,
            migrate_back: None,
            ended: false,
        })
    }

    /// A `visit`-block (§2.3): a move combined with a migrate-back — on drop
    /// the guard issues the end-request and sends the object home.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`].
    pub fn visit_block(&self, object: ObjectId, to: NodeId) -> Result<MoveGuard<'_>, RuntimeError> {
        let origin = self.shared.directory_get(object);
        let mut guard = self.move_block_in(object, to, None)?;
        if guard.granted {
            guard.migrate_back = origin.filter(|&o| o != to);
        }
        Ok(guard)
    }

    /// Executes an operation declared with `move`/`visit` parameter modes
    /// (§2.3, Fig. 1): call-by-move / call-by-visit.
    ///
    /// Each `move` argument is migrated to the callee's node for the
    /// duration of the invocation and stays there; each `visit` argument
    /// migrates back afterwards; `ref` arguments are untouched. Whether a
    /// parameter migration is honoured is, as always, up to the installed
    /// policy — under transient placement a locked argument simply stays
    /// remote and the call proceeds anyway.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ArityMismatch`] if `args` does not match the
    /// declaration, plus everything [`Cluster::invoke`] can report.
    pub fn invoke_with_decl(
        &self,
        callee: ObjectId,
        decl: &oml_core::lang::OperationDecl,
        args: &[ObjectId],
        payload: &[u8],
    ) -> Result<Vec<u8>, RuntimeError> {
        use oml_core::lang::ParamMode;

        if args.len() != decl.params.len() {
            return Err(RuntimeError::ArityMismatch {
                expected: decl.params.len(),
                got: args.len(),
            });
        }
        let callee_node = self
            .shared
            .directory_get(callee)
            .ok_or(RuntimeError::UnknownObject(callee))?;

        // open the parameter move-blocks; the guards end them (and run the
        // visit migrate-backs) when the invocation completes
        let mut guards = Vec::new();
        for (&arg, mode) in args.iter().zip(decl.modes()) {
            match mode {
                ParamMode::Ref => {}
                ParamMode::Move => guards.push(self.move_block(arg, callee_node)?),
                ParamMode::Visit => guards.push(self.visit_block(arg, callee_node)?),
            }
        }
        let result = self.invoke(callee, &decl.name, payload);
        drop(guards);
        result
    }

    /// Where the object currently is (per the directory).
    #[must_use]
    pub fn location_of(&self, object: ObjectId) -> Option<NodeId> {
        self.shared.directory_get(object)
    }

    /// A snapshot of every object's current location, in id order — the
    /// operator's view of the placement the policies produced.
    #[must_use]
    pub fn placement_snapshot(&self) -> Vec<(ObjectId, NodeId)> {
        let dir = self.shared.directory.read();
        let mut v: Vec<(ObjectId, NodeId)> = dir.iter().map(|(&o, &n)| (o, n)).collect();
        v.sort_unstable_by_key(|&(o, _)| o);
        v
    }

    /// How many objects each node currently hosts (index = node id) — a
    /// quick load-balance view.
    #[must_use]
    pub fn occupancy(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.shared.senders.len()];
        for (_, node) in self.placement_snapshot() {
            counts[node.index()] += 1;
        }
        counts
    }

    /// A snapshot of the cluster's activity counters.
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        use std::sync::atomic::Ordering::Relaxed;
        let c = &self.shared.counters;
        ClusterStats {
            invocations: c.invocations.load(Relaxed),
            moves_granted: c.moves_granted.load(Relaxed),
            moves_denied: c.moves_denied.load(Relaxed),
            objects_migrated: c.objects_migrated.load(Relaxed),
            forwards: c.forwards.load(Relaxed),
        }
    }

    /// Whether the object is currently resident at `node`.
    #[must_use]
    pub fn is_resident(&self, object: ObjectId, node: NodeId) -> bool {
        self.location_of(object) == Some(node)
    }

    /// `fix()` — transiently pins the object (§2.2).
    pub fn fix(&self, object: ObjectId) {
        self.shared.mobility.write().entry(object).or_default().fix();
    }

    /// `unfix()` — lifts a transient fix.
    pub fn unfix(&self, object: ObjectId) {
        self.shared.mobility.write().entry(object).or_default().unfix();
    }

    /// `refix()` — re-establishes a transient fix.
    pub fn refix(&self, object: ObjectId) {
        self.shared.mobility.write().entry(object).or_default().refix();
    }

    /// `attach(object, to)` in an optional cooperation context.
    ///
    /// # Errors
    ///
    /// Propagates [`AttachError`] (self-attachment, unknown alliance,
    /// non-member endpoints).
    pub fn attach(
        &self,
        object: ObjectId,
        to: ObjectId,
        context: Option<AllianceId>,
    ) -> Result<AttachOutcome, AttachError> {
        let alliances = self.shared.alliances.lock();
        self.shared
            .attachments
            .lock()
            .attach_checked(object, to, context, &alliances)
    }

    /// `detach(object, to)`; returns whether an edge was removed.
    pub fn detach(&self, object: ObjectId, to: ObjectId) -> bool {
        self.shared.attachments.lock().detach(object, to)
    }

    /// Creates an alliance.
    pub fn create_alliance(&self, name: &str) -> AllianceId {
        self.shared.alliances.lock().create(name)
    }

    /// Adds an object to an alliance.
    ///
    /// # Errors
    ///
    /// Propagates [`oml_core::error::AllianceError`].
    pub fn join_alliance(
        &self,
        alliance: AllianceId,
        object: ObjectId,
    ) -> Result<(), oml_core::error::AllianceError> {
        self.shared.alliances.lock().join(alliance, object)
    }

    /// Stops all node threads and waits for them. Idempotent; also invoked
    /// by `Drop`.
    pub fn shutdown(&self) {
        if self.shared.down.swap(true, Ordering::AcqRel) {
            return;
        }
        for tx in &self.shared.senders {
            let _ = tx.send(Message::Shutdown);
        }
        for handle in self.handles.lock().drain(..) {
            let _ = handle.join();
        }
    }

    fn check_node(&self, node: NodeId) -> Result<(), RuntimeError> {
        if node.index() < self.shared.senders.len() {
            Ok(())
        } else {
            Err(RuntimeError::UnknownNode(node))
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes())
            .field("objects", &self.shared.directory.read().len())
            .finish()
    }
}

/// An open move-block (§2.3). Dropping it issues the `end`-request — and,
/// for [`Cluster::visit_block`], the migrate-back.
#[derive(Debug)]
pub struct MoveGuard<'c> {
    cluster: &'c Cluster,
    object: ObjectId,
    block: BlockId,
    /// The requester's node (where the object was moved to).
    from: NodeId,
    context: Option<AllianceId>,
    granted: bool,
    migrate_back: Option<NodeId>,
    ended: bool,
}

impl MoveGuard<'_> {
    /// Whether the move was granted (vs denied by a conflicting holder).
    #[must_use]
    pub fn granted(&self) -> bool {
        self.granted
    }

    /// The object this block works on.
    #[must_use]
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// Ends the block explicitly (equivalent to dropping the guard).
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.ended {
            return;
        }
        self.ended = true;
        let shared = &self.cluster.shared;
        if let Some(node) = shared.directory_get(self.object) {
            shared.send(
                node,
                Message::EndRequest {
                    object: self.object,
                    block: self.block,
                    from: self.from,
                    was_granted: self.granted,
                    context: self.context,
                    hops: MAX_HOPS,
                },
            );
        }
        if let Some(origin) = self.migrate_back.take() {
            // the visit's migrate-back: an ordinary (best-effort) move
            if let Ok(guard) = self.cluster.move_block_in(self.object, origin, self.context) {
                let mut guard = guard;
                // immediately release: the visit's return is not a block
                guard.finish();
            }
        }
    }
}

impl Drop for MoveGuard<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}
