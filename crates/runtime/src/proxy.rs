//! Object handles: the client-side proxy view.
//!
//! In the systems the paper builds on, "calls to objects are trapped,
//! linearized and forwarded to the current location of the callee" through
//! proxy objects (§3.1). [`ObjRef`] is that proxy: a cheap handle bundling
//! an object id with the cluster it lives in, so call sites read like local
//! method invocations.

use oml_core::attach::AttachOutcome;
use oml_core::error::AttachError;
use oml_core::ids::{AllianceId, NodeId, ObjectId};

use crate::cluster::{Cluster, MoveGuard};
use crate::error::RuntimeError;

/// A proxy handle to one object in a [`Cluster`].
///
/// # Example
///
/// ```
/// use oml_runtime::{Cluster, MobileObject};
/// use oml_core::ids::NodeId;
///
/// struct Echo;
/// impl MobileObject for Echo {
///     fn type_tag(&self) -> &'static str { "echo" }
///     fn invoke(&mut self, _m: &str, p: &[u8]) -> Result<Vec<u8>, String> { Ok(p.to_vec()) }
///     fn linearize(&self) -> Vec<u8> { Vec::new() }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cluster = Cluster::builder().nodes(2).build();
/// cluster.register_type("echo", |_| Box::new(Echo));
/// let id = cluster.create(NodeId::new(0), Box::new(Echo))?;
///
/// let obj = cluster.object(id);
/// assert_eq!(obj.invoke("ping", b"hi")?, b"hi");
/// {
///     let guard = obj.move_to(NodeId::new(1))?;
///     assert!(guard.granted());
/// }
/// assert!(obj.is_resident(NodeId::new(1)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ObjRef<'c> {
    cluster: &'c Cluster,
    id: ObjectId,
}

impl<'c> ObjRef<'c> {
    pub(crate) fn new(cluster: &'c Cluster, id: ObjectId) -> Self {
        ObjRef { cluster, id }
    }

    /// The referenced object's id.
    #[must_use]
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Invokes a method (trapped and forwarded to wherever the object is).
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`].
    pub fn invoke(&self, method: &str, payload: &[u8]) -> Result<Vec<u8>, RuntimeError> {
        self.cluster.invoke(self.id, method, payload)
    }

    /// Opens a move-block towards `node` (see [`Cluster::move_block`]).
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`].
    pub fn move_to(&self, node: NodeId) -> Result<MoveGuard<'c>, RuntimeError> {
        self.cluster.move_block(self.id, node)
    }

    /// Opens a move-block in an explicit cooperation context (§3.4).
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`].
    pub fn move_to_in(
        &self,
        node: NodeId,
        context: Option<AllianceId>,
    ) -> Result<MoveGuard<'c>, RuntimeError> {
        self.cluster.move_block_in(self.id, node, context)
    }

    /// Opens a visit-block towards `node` (§2.3).
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`].
    pub fn visit(&self, node: NodeId) -> Result<MoveGuard<'c>, RuntimeError> {
        self.cluster.visit_block(self.id, node)
    }

    /// `location_of()` — where the object currently is.
    #[must_use]
    pub fn location(&self) -> Option<NodeId> {
        self.cluster.location_of(self.id)
    }

    /// `is_resident()` — whether the object is at `node`.
    #[must_use]
    pub fn is_resident(&self, node: NodeId) -> bool {
        self.cluster.is_resident(self.id, node)
    }

    /// `fix()` — transiently pin the object.
    pub fn fix(&self) {
        self.cluster.fix(self.id);
    }

    /// `unfix()` — release a transient fix.
    pub fn unfix(&self) {
        self.cluster.unfix(self.id);
    }

    /// `refix()` — re-establish a transient fix.
    pub fn refix(&self) {
        self.cluster.refix(self.id);
    }

    /// `attach(self, to)` — latch this object to another.
    ///
    /// # Errors
    ///
    /// Propagates [`AttachError`].
    pub fn attach_to(
        &self,
        to: ObjRef<'_>,
        context: Option<AllianceId>,
    ) -> Result<AttachOutcome, AttachError> {
        self.cluster.attach(self.id, to.id, context)
    }

    /// `detach(self, to)` — undo an attachment; returns whether an edge was
    /// removed.
    pub fn detach_from(&self, to: ObjRef<'_>) -> bool {
        self.cluster.detach(self.id, to.id)
    }
}

impl Cluster {
    /// Returns a proxy handle for `id`.
    ///
    /// The handle does not validate existence — operations on a nonexistent
    /// object report [`RuntimeError::UnknownObject`].
    #[must_use]
    pub fn object(&self, id: ObjectId) -> ObjRef<'_> {
        ObjRef::new(self, id)
    }
}
