//! Minimal byte-encoding helpers for payloads and linearized state.
//!
//! The workspace deliberately has no serialization *format* dependency;
//! objects own their wire representation. These helpers cover the common
//! cases (integers, strings, length-prefixed sequences) on top of
//! [`bytes::Buf`]/[`bytes::BufMut`].

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Incrementally builds a payload.
///
/// # Example
///
/// ```
/// use oml_runtime::wire::{WireReader, WireWriter};
///
/// let bytes = WireWriter::new().u64(42).str("hello").finish();
/// let mut r = WireReader::new(&bytes);
/// assert_eq!(r.u64().unwrap(), 42);
/// assert_eq!(r.str().unwrap(), "hello");
/// assert!(r.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Appends a little-endian `u64`.
    #[must_use]
    pub fn u64(mut self, v: u64) -> Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Appends a little-endian `i64`.
    #[must_use]
    pub fn i64(mut self, v: i64) -> Self {
        self.buf.put_i64_le(v);
        self
    }

    /// Appends a little-endian `u32`.
    #[must_use]
    pub fn u32(mut self, v: u32) -> Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Appends an `f64`.
    #[must_use]
    pub fn f64(mut self, v: f64) -> Self {
        self.buf.put_f64_le(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    #[must_use]
    pub fn str(mut self, s: &str) -> Self {
        self.buf.put_u32_le(s.len() as u32);
        self.buf.put_slice(s.as_bytes());
        self
    }

    /// Appends length-prefixed raw bytes.
    #[must_use]
    pub fn bytes(mut self, b: &[u8]) -> Self {
        self.buf.put_u32_le(b.len() as u32);
        self.buf.put_slice(b);
        self
    }

    /// Finalizes into an immutable buffer.
    #[must_use]
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Reads back what a [`WireWriter`] produced.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Wraps a byte slice.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf }
    }

    /// Whether all bytes were consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns a description of the truncation if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, String> {
        if self.buf.remaining() < 8 {
            return Err("truncated u64".to_owned());
        }
        Ok(self.buf.get_u64_le())
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// Returns a description of the truncation if fewer than 8 bytes remain.
    pub fn i64(&mut self) -> Result<i64, String> {
        if self.buf.remaining() < 8 {
            return Err("truncated i64".to_owned());
        }
        Ok(self.buf.get_i64_le())
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns a description of the truncation if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, String> {
        if self.buf.remaining() < 4 {
            return Err("truncated u32".to_owned());
        }
        Ok(self.buf.get_u32_le())
    }

    /// Reads an `f64`.
    ///
    /// # Errors
    ///
    /// Returns a description of the truncation if fewer than 8 bytes remain.
    pub fn f64(&mut self) -> Result<f64, String> {
        if self.buf.remaining() < 8 {
            return Err("truncated f64".to_owned());
        }
        Ok(self.buf.get_f64_le())
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Reports truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<String, String> {
        let raw = self.raw_bytes()?;
        String::from_utf8(raw).map_err(|_| "invalid utf-8".to_owned())
    }

    /// Reads length-prefixed raw bytes.
    ///
    /// # Errors
    ///
    /// Reports truncation.
    pub fn bytes(&mut self) -> Result<Vec<u8>, String> {
        self.raw_bytes()
    }

    fn raw_bytes(&mut self) -> Result<Vec<u8>, String> {
        if self.buf.remaining() < 4 {
            return Err("truncated length prefix".to_owned());
        }
        let len = self.buf.get_u32_le() as usize;
        if self.buf.remaining() < len {
            return Err("truncated body".to_owned());
        }
        let out = self.buf[..len].to_vec();
        self.buf.advance(len);
        Ok(out)
    }
}

/// The payload of a `CheckpointPut`: an object's linearized passive state
/// plus the `(object_epoch, seq)` freshness stamp that orders it against
/// other replicas. Encoded with [`WireWriter`] like any object payload —
/// replicas on the far side of a lossy link can always decode or reject it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointFrame {
    /// The object's registered delinearizer tag.
    pub type_tag: String,
    /// The linearized state, exactly as `MobileObject::linearize` produced.
    pub state: Bytes,
    /// Object epoch the copy was linearized under.
    pub object_epoch: u64,
    /// Refresh sequence within the object's lifetime.
    pub seq: u64,
}

impl CheckpointFrame {
    /// Encodes the frame for a `CheckpointPut` message.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        WireWriter::new()
            .str(&self.type_tag)
            .bytes(&self.state)
            .u64(self.object_epoch)
            .u64(self.seq)
            .finish()
    }

    /// Decodes a frame from a `CheckpointPut` payload.
    ///
    /// # Errors
    ///
    /// Reports truncation or invalid UTF-8 in the type tag.
    pub fn decode(buf: &[u8]) -> Result<Self, String> {
        let mut r = WireReader::new(buf);
        let type_tag = r.str()?;
        let state = Bytes::from(r.bytes()?);
        let object_epoch = r.u64()?;
        let seq = r.u64()?;
        Ok(CheckpointFrame {
            type_tag,
            state,
            object_epoch,
            seq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_type() {
        let b = WireWriter::new()
            .u64(7)
            .i64(-9)
            .u32(11)
            .f64(1.5)
            .str("héllo")
            .bytes(&[0xde, 0xad])
            .finish();
        let mut r = WireReader::new(&b);
        assert_eq!(r.u64().unwrap(), 7);
        assert_eq!(r.i64().unwrap(), -9);
        assert_eq!(r.u32().unwrap(), 11);
        assert_eq!(r.f64().unwrap().to_bits(), 1.5f64.to_bits());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), vec![0xde, 0xad]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_reported_not_panicked() {
        let b = WireWriter::new().u64(7).finish();
        let mut r = WireReader::new(&b[..4]);
        assert!(r.u64().unwrap_err().contains("truncated"));

        let b = WireWriter::new().u32(7).finish();
        let mut r = WireReader::new(&b[..2]);
        assert!(r.u32().unwrap_err().contains("truncated u32"));

        let mut r = WireReader::new(&[2, 0, 0, 0, 1]); // claims 2 bytes, has 1
        assert!(r.bytes().unwrap_err().contains("truncated body"));

        let mut r = WireReader::new(&[1, 0]);
        assert!(r.str().unwrap_err().contains("length prefix"));
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let b = WireWriter::new().bytes(&[0xff, 0xfe]).finish();
        let mut r = WireReader::new(&b);
        assert!(r.str().unwrap_err().contains("utf-8"));
    }

    #[test]
    fn empty_reader_is_empty() {
        assert!(WireReader::new(&[]).is_empty());
    }

    #[test]
    fn checkpoint_frame_round_trips() {
        let f = CheckpointFrame {
            type_tag: "counter".into(),
            state: Bytes::copy_from_slice(&[1, 2, 3]),
            object_epoch: 4,
            seq: 19,
        };
        let decoded = CheckpointFrame::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn truncated_checkpoint_frame_is_an_error() {
        let f = CheckpointFrame {
            type_tag: "counter".into(),
            state: Bytes::copy_from_slice(&[9]),
            object_epoch: 1,
            seq: 2,
        };
        let enc = f.encode();
        for cut in 0..enc.len() {
            assert!(
                CheckpointFrame::decode(&enc[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }
}
