//! The filesystem boundary: every real disk operation the store performs
//! lives in this one module, behind the [`Storage`] trait.
//!
//! Confinement is enforced by the `store_io.rs` source-scan test (the
//! sibling of `transport_deadlines.rs`): no other file under `store/` may
//! touch `std::fs`. That keeps the WAL logic testable against the
//! in-memory [`crate::store::FaultFs`] — which can tear writes, skip
//! fsyncs and lose power — while this module stays small enough to audit
//! by eye.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Path-based storage operations the WAL store needs. Implemented by
/// [`RealFs`] (actual disk) and [`crate::store::FaultFs`] (in-memory,
/// fault-injecting).
pub trait Storage: Send + Sync {
    /// Creates `dir` and any missing parents.
    ///
    /// # Errors
    /// Propagated IO failures.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Reads the whole file at `path`.
    ///
    /// # Errors
    /// Propagated IO failures; `NotFound` when the file does not exist.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates (or truncates) `path` with `bytes` — *not* atomic, *not*
    /// synced; use [`write_atomic`](Self::write_atomic) for publication.
    ///
    /// # Errors
    /// Propagated IO failures.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Appends `bytes` to `path`, creating it if absent. A crash (or an
    /// injected fault) may leave a *prefix* of `bytes` on disk — the torn
    /// write the replay path truncates.
    ///
    /// # Errors
    /// Propagated IO failures.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Fsyncs `path`'s data and metadata to stable storage.
    ///
    /// # Errors
    /// Propagated IO failures.
    fn sync(&self, path: &Path) -> io::Result<()>;

    /// Truncates `path` to `len` bytes (discarding a torn tail).
    ///
    /// # Errors
    /// Propagated IO failures.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Publishes `bytes` at `dst` atomically: write `tmp`, fsync it,
    /// rename over `dst`, fsync the parent directory. Readers see either
    /// the old content or the new, never a prefix.
    ///
    /// # Errors
    /// Propagated IO failures.
    fn write_atomic(&self, tmp: &Path, dst: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Removes the file at `path`.
    ///
    /// # Errors
    /// Propagated IO failures; `NotFound` when already absent.
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// The production [`Storage`]: plain `std::fs`, no caching, no cleverness.
/// Handles are opened per call — the store's throughput is bounded by
/// fsync, not `open(2)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl Storage for RealFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(bytes)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        // fsync through a fresh descriptor flushes the same inode
        File::open(path)?.sync_all()
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn write_atomic(&self, tmp: &Path, dst: &Path, bytes: &[u8]) -> io::Result<()> {
        {
            let mut f = File::create(tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(tmp, dst)?;
        // fsync the directory so the rename itself is durable; best-effort
        // where directories cannot be opened (non-unix platforms)
        if let Some(parent) = dst.parent() {
            if let Ok(d) = File::open(parent) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("oml-fsio-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_read_truncate_round_trip() {
        let dir = temp_dir("rt");
        let fs = RealFs;
        fs.create_dir_all(&dir).unwrap();
        let p = dir.join("wal.log");
        fs.append(&p, b"hello ").unwrap();
        fs.append(&p, b"world").unwrap();
        fs.sync(&p).unwrap();
        assert_eq!(fs.read(&p).unwrap(), b"hello world");
        fs.truncate(&p, 5).unwrap();
        assert_eq!(fs.read(&p).unwrap(), b"hello");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_replaces_and_removes_tmp() {
        let dir = temp_dir("at");
        let fs = RealFs;
        fs.create_dir_all(&dir).unwrap();
        let dst = dir.join("MANIFEST");
        let tmp = dir.join("MANIFEST.tmp");
        fs.write_atomic(&tmp, &dst, b"gen 1").unwrap();
        fs.write_atomic(&tmp, &dst, b"gen 2").unwrap();
        assert_eq!(fs.read(&dst).unwrap(), b"gen 2");
        assert!(fs.read(&tmp).is_err(), "tmp must have been renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_reads_not_found() {
        let dir = temp_dir("nf");
        let fs = RealFs;
        fs.create_dir_all(&dir).unwrap();
        let err = fs.read(&dir.join("absent")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let err = fs.remove(&dir.join("absent")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
