//! `FaultFs` — a seeded, in-memory [`Storage`] that injects the storage
//! faults real disks produce: torn appends, fsyncs that lie, bit rot and
//! files missing on reopen. The storage-side sibling of the transport's
//! `FaultProxy`.
//!
//! The crucial capability a real filesystem cannot offer a test is
//! **deterministic power loss**: a SIGKILLed process keeps every completed
//! `write(2)` because the page cache belongs to the kernel, so fsync
//! policies are indistinguishable under process crashes alone. `FaultFs`
//! tracks, per file, the *durable* prefix (advanced only by a successful
//! sync) separately from the *written* length; [`FaultFs::power_loss`]
//! truncates every file to its durable prefix, which is exactly what a
//! machine losing power does — and exactly what separates
//! `FsyncPolicy::Always` from `Never` observably.
//!
//! The handle is cheaply cloneable: tests keep one clone as the control
//! plane while the store owns another.

use super::fsio::Storage;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One simulated file: written bytes plus the prefix known durable.
#[derive(Debug, Default, Clone)]
struct FileBuf {
    data: Vec<u8>,
    /// Bytes guaranteed to survive [`FaultFs::power_loss`]; advanced by
    /// honest syncs and by atomic publication.
    durable: usize,
}

/// Observability counters for assertions in chaos tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultFsCounters {
    /// Append calls observed.
    pub appends: u64,
    /// Bytes actually written by appends (torn writes count the kept part).
    pub bytes_appended: u64,
    /// Sync calls observed (honest or skipped).
    pub syncs: u64,
    /// Syncs that were skipped by the `skip_fsync` fault.
    pub skipped_syncs: u64,
    /// Appends torn by the injected fault.
    pub torn_writes: u64,
}

#[derive(Default)]
struct Inner {
    files: HashMap<PathBuf, FileBuf>,
    /// Injected fault: tear the `at_append`-th append (1-based, counted
    /// across all files), keeping only `keep` bytes of the chunk.
    torn: Option<(u64, usize)>,
    appends_seen: u64,
    skip_fsync: bool,
    vanish: HashSet<PathBuf>,
    counters: FaultFsCounters,
}

/// The fault-injecting in-memory filesystem. See the module docs.
#[derive(Clone, Default)]
pub struct FaultFs {
    inner: Arc<Mutex<Inner>>,
}

impl FaultFs {
    /// A fresh, fault-free in-memory filesystem.
    #[must_use]
    pub fn new() -> FaultFs {
        FaultFs::default()
    }

    /// Derives deterministic fault parameters from `seed` via SplitMix64 —
    /// the same generator the chaos schedules use — so a failing seed
    /// replays bit-identically.
    #[must_use]
    pub fn mix(seed: u64, stream: u64) -> u64 {
        let mut z = seed
            .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Arms a torn write: the `at_append`-th append (1-based, across all
    /// files) keeps only `keep` bytes of its chunk and fails — the process
    /// "died" mid-`write(2)`.
    pub fn torn_write(&self, at_append: u64, keep: usize) {
        self.inner.lock().torn = Some((at_append, keep));
    }

    /// When `on`, syncs report success without advancing the durable
    /// prefix — the firmware that acknowledges flushes it never performs.
    pub fn skip_fsync(&self, on: bool) {
        self.inner.lock().skip_fsync = on;
    }

    /// The next read of `path` fails with `NotFound` (one-shot) — the file
    /// that vanished between shutdown and reopen.
    pub fn vanish_on_reopen(&self, path: &Path) {
        self.inner.lock().vanish.insert(path.to_path_buf());
    }

    /// Flips one bit of `path` at `bit_offset` (bit rot). `false` if the
    /// file is missing or shorter than the offset.
    pub fn flip_bit(&self, path: &Path, bit_offset: u64) -> bool {
        let mut inner = self.inner.lock();
        let Some(file) = inner.files.get_mut(path) else {
            return false;
        };
        let byte = (bit_offset / 8) as usize;
        if byte >= file.data.len() {
            return false;
        }
        file.data[byte] ^= 1 << (bit_offset % 8);
        true
    }

    /// Simulated power loss: every file is truncated to its durable
    /// prefix. Unsynced appends vanish, exactly as they would from a dead
    /// machine's page cache.
    pub fn power_loss(&self) {
        let mut inner = self.inner.lock();
        for file in inner.files.values_mut() {
            let durable = file.durable;
            file.data.truncate(durable);
        }
    }

    /// The written length of `path`, if it exists.
    #[must_use]
    pub fn file_len(&self, path: &Path) -> Option<usize> {
        self.inner.lock().files.get(path).map(|f| f.data.len())
    }

    /// The durable prefix of `path`, if it exists.
    #[must_use]
    pub fn durable_len(&self, path: &Path) -> Option<usize> {
        self.inner.lock().files.get(path).map(|f| f.durable)
    }

    /// Counter snapshot.
    #[must_use]
    pub fn counters(&self) -> FaultFsCounters {
        self.inner.lock().counters
    }
}

impl Storage for FaultFs {
    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut inner = self.inner.lock();
        if inner.vanish.remove(path) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "file vanished on reopen (injected)",
            ));
        }
        inner
            .files
            .get(path)
            .map(|f| f.data.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such simulated file"))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock();
        inner.files.insert(
            path.to_path_buf(),
            FileBuf {
                data: bytes.to_vec(),
                durable: 0,
            },
        );
        Ok(())
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock();
        inner.appends_seen += 1;
        inner.counters.appends += 1;
        let torn = match inner.torn {
            Some((at, keep)) if at == inner.appends_seen => Some(keep.min(bytes.len())),
            _ => None,
        };
        let written = torn.unwrap_or(bytes.len());
        inner.counters.bytes_appended += written as u64;
        let file = inner.files.entry(path.to_path_buf()).or_default();
        file.data.extend_from_slice(&bytes[..written]);
        if torn.is_some() {
            inner.counters.torn_writes += 1;
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "torn write (injected)",
            ));
        }
        Ok(())
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock();
        inner.counters.syncs += 1;
        if inner.skip_fsync {
            inner.counters.skipped_syncs += 1;
            return Ok(()); // the lie
        }
        match inner.files.get_mut(path) {
            Some(file) => {
                file.durable = file.data.len();
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no such simulated file",
            )),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut inner = self.inner.lock();
        match inner.files.get_mut(path) {
            Some(file) => {
                file.data.truncate(len as usize);
                file.durable = file.durable.min(len as usize);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no such simulated file",
            )),
        }
    }

    fn write_atomic(&self, _tmp: &Path, dst: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock();
        // rename + dir fsync make the publication durable as one unit
        inner.files.insert(
            dst.to_path_buf(),
            FileBuf {
                data: bytes.to_vec(),
                durable: bytes.len(),
            },
        );
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self.inner.lock().files.remove(path) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no such simulated file",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn p(name: &str) -> PathBuf {
        PathBuf::from(format!("/virtual/{name}"))
    }

    #[test]
    fn power_loss_discards_unsynced_suffix() {
        let fs = FaultFs::new();
        fs.append(&p("wal"), b"aaaa").unwrap();
        fs.sync(&p("wal")).unwrap();
        fs.append(&p("wal"), b"bbbb").unwrap();
        assert_eq!(fs.file_len(&p("wal")), Some(8));
        assert_eq!(fs.durable_len(&p("wal")), Some(4));
        fs.power_loss();
        assert_eq!(fs.read(&p("wal")).unwrap(), b"aaaa");
    }

    #[test]
    fn skipped_fsync_is_a_lie_power_loss_exposes() {
        let fs = FaultFs::new();
        fs.skip_fsync(true);
        fs.append(&p("wal"), b"data").unwrap();
        fs.sync(&p("wal")).unwrap(); // reports success
        fs.power_loss();
        assert_eq!(fs.read(&p("wal")).unwrap(), b"", "the sync lied");
        assert_eq!(fs.counters().skipped_syncs, 1);
    }

    #[test]
    fn torn_append_keeps_a_prefix_and_errors() {
        let fs = FaultFs::new();
        fs.torn_write(2, 3);
        fs.append(&p("wal"), b"first").unwrap();
        let err = fs.append(&p("wal"), b"second").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(fs.read(&p("wal")).unwrap(), b"firstsec");
        assert_eq!(fs.counters().torn_writes, 1);
    }

    #[test]
    fn bit_flip_and_vanish() {
        let fs = FaultFs::new();
        fs.write_atomic(&p("t"), &p("snap"), &[0b0000_0000])
            .unwrap();
        assert!(fs.flip_bit(&p("snap"), 3));
        assert_eq!(fs.read(&p("snap")).unwrap(), vec![0b0000_1000]);
        assert!(!fs.flip_bit(&p("snap"), 64), "offset past the end");
        fs.vanish_on_reopen(&p("snap"));
        assert!(fs.read(&p("snap")).is_err());
        assert!(fs.read(&p("snap")).is_ok(), "vanish is one-shot");
    }

    #[test]
    fn write_atomic_is_durable_as_one_unit() {
        let fs = FaultFs::new();
        fs.write_atomic(&p("m.tmp"), &p("m"), b"gen 3").unwrap();
        fs.power_loss();
        assert_eq!(fs.read(&p("m")).unwrap(), b"gen 3");
    }

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(FaultFs::mix(1, 2), FaultFs::mix(1, 2));
        assert_ne!(FaultFs::mix(1, 2), FaultFs::mix(1, 3));
    }
}
