//! Durable checkpoint stores: the persistence substrate under the
//! quorum-replicated checkpoints.
//!
//! PR 5's replicated checkpoints keep every passive copy in process
//! memory, so a correlated failure beyond the replica set — or a
//! whole-cluster power loss — still loses every object. This module adds
//! the missing layer: a [`CheckpointStore`] trait with two production
//! implementations,
//!
//! * [`MemStore`] — today's behavior, bit-compatible: a `HashMap` with the
//!   same freshness coordinates, for clusters that opt out of disk, and
//! * [`WalStore`] — a per-node on-disk store built on a CRC-32-framed
//!   append-only write-ahead log (the incremental-decoder idiom of
//!   [`crate::transport::frame`]: truncation is steady state, corruption
//!   is terminal), a configurable [`FsyncPolicy`], snapshot compaction via
//!   write-temp-then-atomic-rename with a manifest, and cold-start
//!   recovery that replays snapshot + WAL suffix, truncates at the first
//!   torn record and preserves object-epoch monotonicity so PR 4's
//!   fencing survives restarts.
//!
//! All *real* filesystem IO is confined to [`fsio`] (enforced by the
//! `store_io.rs` source-scan test); [`FaultFs`] is a purely in-memory
//! [`fsio::Storage`] that injects torn writes, skipped fsyncs, bit flips
//! and vanishing files — the storage-side sibling of the transport's
//! `FaultProxy` — so the chaos tests can simulate power loss
//! deterministically (a real SIGKILL never loses completed `write`s: the
//! page cache survives the process).

pub mod faultfs;
pub mod fsio;
pub mod wal;

pub use faultfs::{FaultFs, FaultFsCounters};
pub use fsio::{RealFs, Storage};
pub use wal::{
    CompactionReport, RecoveryReport, WalRecord, WalReplayer, WalSegment, WalStore, WalStoreConfig,
};

use bytes::Bytes;
use oml_core::ids::ObjectId;
use std::collections::HashMap;

/// One stored passive copy of an object, stamped with the freshness
/// coordinates that order it against other copies: freshness is the
/// lexicographic order on `(object_epoch, seq)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredCheckpoint {
    /// The registered type tag used to delinearize the state.
    pub type_tag: String,
    /// The object's linearized state.
    pub state: Bytes,
    /// The object epoch the copy was linearized under.
    pub object_epoch: u64,
    /// The refresh sequence number within that epoch.
    pub seq: u64,
}

impl StoredCheckpoint {
    /// The freshness coordinates: copies compare lexicographically.
    #[must_use]
    pub fn version(&self) -> (u64, u64) {
        (self.object_epoch, self.seq)
    }
}

/// How durable a just-acknowledged write is, per the store's fsync policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub enum Durability {
    /// The record is on stable storage (fsync completed before returning).
    Durable,
    /// The record is written but not yet synced — a power loss may lose it.
    Buffered,
}

impl Durability {
    /// `true` iff the write reached stable storage before returning.
    #[must_use]
    pub fn is_durable(self) -> bool {
        matches!(self, Durability::Durable)
    }
}

/// When the write-ahead log is fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Every append is synced before the write is acknowledged. An acked
    /// checkpoint survives any cold restart.
    #[default]
    Always,
    /// Sync after `n` unsynced records or `ms` milliseconds, whichever
    /// comes first. Bounded loss window, amortized sync cost.
    Batch {
        /// Unsynced records that force a sync.
        n: u64,
        /// Milliseconds since the last sync that force one.
        ms: u64,
    },
    /// Never sync (the OS flushes when it pleases) — the negative-control
    /// policy: acks lie about durability and the checker must catch the
    /// loss after a simulated power failure.
    Never,
}

impl FsyncPolicy {
    /// Parses `always` / `never` / `batch:N:MS` (the `--fsync` /
    /// `OML_FSYNC` grammar). `None` on anything else.
    #[must_use]
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            other => {
                let rest = other.strip_prefix("batch:")?;
                let (n, ms) = rest.split_once(':')?;
                Some(FsyncPolicy::Batch {
                    n: n.parse().ok()?,
                    ms: ms.parse().ok()?,
                })
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Batch { n, ms } => write!(f, "batch:{n}:{ms}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// A storage-layer failure. Unlike the in-memory paths these are real
/// errors a caller must handle — never `.unwrap()`ed inside `store/`
/// (enforced by the `store_io.rs` source-scan test).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An IO operation failed.
    Io {
        /// Which operation (`append`, `sync`, `rename`, …).
        op: &'static str,
        /// The path involved.
        path: String,
        /// The OS error text.
        message: String,
    },
    /// A persisted structure failed validation (manifest or snapshot).
    Corrupt {
        /// The path involved.
        path: String,
        /// What failed to validate.
        detail: String,
    },
}

impl StoreError {
    pub(crate) fn io(op: &'static str, path: &std::path::Path, e: &std::io::Error) -> StoreError {
        StoreError::Io {
            op,
            path: path.display().to_string(),
            message: e.to_string(),
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, message } => {
                write!(f, "store io failure: {op} {path}: {message}")
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "store corruption: {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Write-ahead-log observability counters (all zero for [`MemStore`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended to the WAL since open.
    pub appended: u64,
    /// Records made durable by an fsync since open.
    pub synced: u64,
    /// Fsync calls issued.
    pub syncs: u64,
    /// Snapshot compactions performed.
    pub compactions: u64,
    /// Records in the live WAL segment (resets at compaction).
    pub wal_records: u64,
    /// Bytes in the live WAL segment (resets at compaction).
    pub wal_bytes: u64,
    /// Current snapshot generation.
    pub generation: u64,
}

/// A store of passive object copies with epoch-floor bookkeeping and a
/// small `u32 → u64` metadata table (the multi-process coordinator keeps
/// worker incarnations there so fencing survives its own restart).
///
/// Freshness gating is the *caller's* job — [`put`](Self::put) installs
/// unconditionally; callers compare [`StoredCheckpoint::version`] first,
/// exactly as the in-memory path always has.
pub trait CheckpointStore: Send {
    /// The stored copy of `object`, if any.
    fn get(&self, object: ObjectId) -> Option<&StoredCheckpoint>;

    /// Installs `ckpt` as `object`'s copy and raises the object's epoch
    /// floor to `ckpt.object_epoch`. Returns how durable the write is per
    /// the store's fsync policy.
    ///
    /// # Errors
    /// [`StoreError`] on an IO failure — the record may be torn on disk;
    /// recovery truncates it.
    fn put(&mut self, object: ObjectId, ckpt: StoredCheckpoint) -> Result<Durability, StoreError>;

    /// Drops `object`'s copy (its epoch floor is retained).
    ///
    /// # Errors
    /// [`StoreError`] on an IO failure.
    fn remove(&mut self, object: ObjectId) -> Result<(), StoreError>;

    /// Drops every copy. Epoch floors and metadata are retained — fencing
    /// must survive a wipe of the payload data.
    ///
    /// # Errors
    /// [`StoreError`] on an IO failure.
    fn clear(&mut self) -> Result<(), StoreError>;

    /// Every object with a stored copy.
    fn objects(&self) -> Vec<ObjectId>;

    /// Number of stored copies.
    fn len(&self) -> usize;

    /// `true` iff no copies are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forces buffered records to stable storage; returns how many records
    /// became durable.
    ///
    /// # Errors
    /// [`StoreError`] on an IO failure.
    fn sync(&mut self) -> Result<u64, StoreError>;

    /// Raises `object`'s epoch floor to `epoch` (noop if already higher).
    /// Durable stores persist the floor so a cold restart cannot
    /// reinstantiate the object under a stale epoch.
    ///
    /// # Errors
    /// [`StoreError`] on an IO failure.
    fn note_epoch(&mut self, object: ObjectId, epoch: u64) -> Result<Durability, StoreError>;

    /// The highest object epoch ever recorded for `object` (0 if none).
    fn epoch_floor(&self, object: ObjectId) -> u64;

    /// Every `(object, floor)` pair with a nonzero floor.
    fn epoch_floors(&self) -> Vec<(ObjectId, u64)>;

    /// Persists a metadata entry (e.g. a worker incarnation).
    ///
    /// # Errors
    /// [`StoreError`] on an IO failure.
    fn set_meta(&mut self, key: u32, value: u64) -> Result<Durability, StoreError>;

    /// A metadata entry, if set.
    fn meta(&self, key: u32) -> Option<u64>;

    /// WAL observability counters (zeros for in-memory stores).
    fn wal_stats(&self) -> WalStats {
        WalStats::default()
    }

    /// `true` iff writes land on stable storage (a cold restart can
    /// recover them). Gates `WalAppended`/`ColdRecovered` trace emission —
    /// in-memory stores stay silent so the checker's durability invariants
    /// only arm when there is a disk to hold them to.
    fn durable_backed(&self) -> bool {
        false
    }
}

/// The in-memory store: bit-compatible with the pre-store behavior of the
/// quorum-replication layer. Every write is trivially "durable" for the
/// life of the process and gone with it.
#[derive(Debug, Default)]
pub struct MemStore {
    map: HashMap<ObjectId, StoredCheckpoint>,
    floors: HashMap<ObjectId, u64>,
    meta: HashMap<u32, u64>,
}

impl MemStore {
    /// An empty in-memory store.
    #[must_use]
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

impl CheckpointStore for MemStore {
    fn get(&self, object: ObjectId) -> Option<&StoredCheckpoint> {
        self.map.get(&object)
    }

    fn put(&mut self, object: ObjectId, ckpt: StoredCheckpoint) -> Result<Durability, StoreError> {
        let floor = self.floors.entry(object).or_insert(0);
        *floor = (*floor).max(ckpt.object_epoch);
        self.map.insert(object, ckpt);
        Ok(Durability::Durable)
    }

    fn remove(&mut self, object: ObjectId) -> Result<(), StoreError> {
        self.map.remove(&object);
        Ok(())
    }

    fn clear(&mut self) -> Result<(), StoreError> {
        self.map.clear();
        Ok(())
    }

    fn objects(&self) -> Vec<ObjectId> {
        self.map.keys().copied().collect()
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn sync(&mut self) -> Result<u64, StoreError> {
        Ok(0)
    }

    fn note_epoch(&mut self, object: ObjectId, epoch: u64) -> Result<Durability, StoreError> {
        let floor = self.floors.entry(object).or_insert(0);
        *floor = (*floor).max(epoch);
        Ok(Durability::Durable)
    }

    fn epoch_floor(&self, object: ObjectId) -> u64 {
        self.floors.get(&object).copied().unwrap_or(0)
    }

    fn epoch_floors(&self) -> Vec<(ObjectId, u64)> {
        self.floors
            .iter()
            .filter(|(_, &e)| e > 0)
            .map(|(&o, &e)| (o, e))
            .collect()
    }

    fn set_meta(&mut self, key: u32, value: u64) -> Result<Durability, StoreError> {
        self.meta.insert(key, value);
        Ok(Durability::Durable)
    }

    fn meta(&self, key: u32) -> Option<u64> {
        self.meta.get(&key).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ckpt(epoch: u64, seq: u64) -> StoredCheckpoint {
        StoredCheckpoint {
            type_tag: "t".into(),
            state: Bytes::copy_from_slice(b"s"),
            object_epoch: epoch,
            seq,
        }
    }

    #[test]
    fn fsync_policy_grammar_round_trips() {
        for p in [
            FsyncPolicy::Always,
            FsyncPolicy::Never,
            FsyncPolicy::Batch { n: 8, ms: 50 },
        ] {
            assert_eq!(FsyncPolicy::parse(&p.to_string()), Some(p));
        }
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::parse("batch:x:1"), None);
        assert_eq!(FsyncPolicy::parse("batch:1"), None);
    }

    #[test]
    fn mem_store_tracks_floors_through_remove_and_clear() {
        let mut s = MemStore::new();
        let o = ObjectId::new(1);
        assert!(s.put(o, ckpt(3, 1)).unwrap().is_durable());
        assert_eq!(s.epoch_floor(o), 3);
        s.remove(o).unwrap();
        assert!(s.get(o).is_none());
        assert_eq!(s.epoch_floor(o), 3, "floor survives remove");
        let _ = s.put(o, ckpt(4, 0)).unwrap();
        s.clear().unwrap();
        assert!(s.is_empty());
        assert_eq!(s.epoch_floor(o), 4, "floor survives clear");
        assert_eq!(s.epoch_floors(), vec![(o, 4)]);
    }

    #[test]
    fn mem_store_meta_round_trips() {
        let mut s = MemStore::new();
        assert_eq!(s.meta(7), None);
        let _ = s.set_meta(7, 42).unwrap();
        assert_eq!(s.meta(7), Some(42));
    }

    #[test]
    fn versions_order_lexicographically() {
        assert!(ckpt(2, 0).version() > ckpt(1, 9).version());
    }
}
