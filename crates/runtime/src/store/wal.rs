//! The write-ahead checkpoint store: CRC-32-framed append-only log,
//! snapshot compaction behind a manifest, cold-start recovery.
//!
//! # On-disk layout (one directory per node)
//!
//! ```text
//! MANIFEST          one framed record naming the live generation g
//! snap-<g>.bin      framed records: the state as of the last compaction
//! wal-<g>.log       framed records appended since
//! ```
//!
//! Every record is a [`crate::transport::frame`] frame
//! (`[len][crc][payload]`); the payload is a tagged [`WalRecord`]. The
//! replay path reuses the transport decoder's contract verbatim:
//! **truncation is steady state** — a torn tail (the crash landed inside
//! an append) is silently cut back to the last whole record — while
//! **corruption is terminal**: a CRC mismatch stops the replay at the
//! longest valid prefix and is *reported*, never silently accepted.
//!
//! Compaction writes the full state to `snap-<g+1>.bin` via
//! write-temp-then-atomic-rename, starts an empty `wal-<g+1>.log`, then
//! atomically flips `MANIFEST` — a crash at any point leaves either
//! generation fully readable. Epoch floors ([`WalRecord::Epoch`]) and the
//! metadata table ([`WalRecord::Meta`]) are carried through compaction
//! and survive [`CheckpointStore::clear`], so PR 4's fencing survives any
//! number of restarts.

use super::fsio::{RealFs, Storage};
use super::{CheckpointStore, Durability, FsyncPolicy, StoreError, StoredCheckpoint, WalStats};
use crate::transport::frame::{encode_frame, FrameConfig, FrameDecoder, HEADER_LEN};
use crate::wire::{WireReader, WireWriter};
use bytes::Bytes;
use oml_core::ids::ObjectId;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const REC_PUT: u32 = 1;
const REC_REMOVE: u32 = 2;
const REC_CLEAR: u32 = 3;
const REC_EPOCH: u32 = 4;
const REC_META: u32 = 5;

/// `MANIFEST` magic: `OMLW`.
const MANIFEST_MAGIC: u32 = 0x4F4D_4C57;
const MANIFEST_VERSION: u32 = 1;

/// One logical WAL record (the frame payload, decoded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Install a checkpoint (and raise the object's epoch floor).
    Put {
        /// The object.
        object: ObjectId,
        /// Epoch the state was linearized under.
        object_epoch: u64,
        /// Refresh sequence within that epoch.
        seq: u64,
        /// Delinearizer type tag.
        type_tag: String,
        /// Linearized state.
        state: Bytes,
    },
    /// Drop an object's checkpoint (floor retained).
    Remove {
        /// The object.
        object: ObjectId,
    },
    /// Drop every checkpoint (floors and metadata retained).
    Clear,
    /// Raise an object's epoch floor without storing state.
    Epoch {
        /// The object.
        object: ObjectId,
        /// The floor.
        epoch: u64,
    },
    /// A metadata entry (e.g. a worker incarnation).
    Meta {
        /// Caller-defined key.
        key: u32,
        /// Value.
        value: u64,
    },
}

/// Appends `rec`, framed, to `out`.
pub fn encode_record(rec: &WalRecord, out: &mut Vec<u8>) {
    let payload = match rec {
        WalRecord::Put {
            object,
            object_epoch,
            seq,
            type_tag,
            state,
        } => WireWriter::new()
            .u32(REC_PUT)
            .u32(object.as_u32())
            .u64(*object_epoch)
            .u64(*seq)
            .str(type_tag)
            .bytes(state)
            .finish(),
        WalRecord::Remove { object } => WireWriter::new()
            .u32(REC_REMOVE)
            .u32(object.as_u32())
            .finish(),
        WalRecord::Clear => WireWriter::new().u32(REC_CLEAR).finish(),
        WalRecord::Epoch { object, epoch } => WireWriter::new()
            .u32(REC_EPOCH)
            .u32(object.as_u32())
            .u64(*epoch)
            .finish(),
        WalRecord::Meta { key, value } => WireWriter::new()
            .u32(REC_META)
            .u32(*key)
            .u64(*value)
            .finish(),
    };
    encode_frame(&payload, out);
}

/// Decodes one frame payload into a [`WalRecord`].
///
/// # Errors
/// A description of the malformation. The CRC already passed when this is
/// called, so an error here means a logic-level corruption — the replay
/// treats it exactly like a checksum failure: terminal, reported.
pub fn decode_record(payload: &[u8]) -> Result<WalRecord, String> {
    let mut r = WireReader::new(payload);
    let rec = match r.u32()? {
        REC_PUT => WalRecord::Put {
            object: ObjectId::new(r.u32()?),
            object_epoch: r.u64()?,
            seq: r.u64()?,
            type_tag: r.str()?,
            state: Bytes::from(r.bytes()?),
        },
        REC_REMOVE => WalRecord::Remove {
            object: ObjectId::new(r.u32()?),
        },
        REC_CLEAR => WalRecord::Clear,
        REC_EPOCH => WalRecord::Epoch {
            object: ObjectId::new(r.u32()?),
            epoch: r.u64()?,
        },
        REC_META => WalRecord::Meta {
            key: r.u32()?,
            value: r.u64()?,
        },
        other => return Err(format!("unknown wal record tag {other}")),
    };
    if !r.is_empty() {
        return Err("trailing bytes after wal record".into());
    }
    Ok(rec)
}

/// The outcome of replaying one log segment (a WAL file or a snapshot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalSegment {
    /// Records recovered, in append order — the longest valid prefix.
    pub records: Vec<WalRecord>,
    /// Bytes covered by those records (the safe truncation point).
    pub valid_bytes: u64,
    /// Trailing bytes past the last whole record: a torn tail (crash
    /// mid-append) or the start of a corrupt region.
    pub torn_bytes: u64,
    /// `true` iff the replay stopped on a checksum/decoding failure rather
    /// than simple truncation. Never silently accepted.
    pub corrupt: bool,
}

/// Incremental segment replayer, mirroring [`FrameDecoder`]'s contract:
/// feed arbitrary chunks, then [`finish`](Self::finish). Public so the WAL
/// proptests can drive it under arbitrary write splits.
#[derive(Debug)]
pub struct WalReplayer {
    dec: FrameDecoder,
    records: Vec<WalRecord>,
    valid_bytes: u64,
    fed: u64,
    corrupt: bool,
}

impl WalReplayer {
    /// A replayer accepting payloads up to `max_frame` bytes.
    #[must_use]
    pub fn new(max_frame: u32) -> WalReplayer {
        WalReplayer {
            dec: FrameDecoder::new(FrameConfig { max_frame }),
            records: Vec::new(),
            valid_bytes: 0,
            fed: 0,
            corrupt: false,
        }
    }

    /// Buffers another chunk of the segment (no-op once corrupt).
    pub fn feed(&mut self, chunk: &[u8]) {
        self.fed += chunk.len() as u64;
        if self.corrupt {
            return;
        }
        self.dec.extend(chunk);
        loop {
            match self.dec.next_frame() {
                Ok(Some(payload)) => match decode_record(&payload) {
                    Ok(rec) => {
                        self.valid_bytes += (HEADER_LEN + payload.len()) as u64;
                        self.records.push(rec);
                    }
                    Err(_) => {
                        self.corrupt = true;
                        return;
                    }
                },
                Ok(None) => return,
                Err(_) => {
                    self.corrupt = true;
                    return;
                }
            }
        }
    }

    /// The replayed segment.
    #[must_use]
    pub fn finish(self) -> WalSegment {
        WalSegment {
            torn_bytes: self.fed - self.valid_bytes,
            records: self.records,
            valid_bytes: self.valid_bytes,
            corrupt: self.corrupt,
        }
    }
}

/// Replays a whole in-memory segment.
#[must_use]
pub fn replay_segment(bytes: &[u8], max_frame: u32) -> WalSegment {
    let mut r = WalReplayer::new(max_frame);
    r.feed(bytes);
    r.finish()
}

/// What cold-start recovery found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The manifest's live generation (0 = fresh store).
    pub generation: u64,
    /// Records replayed from the snapshot.
    pub snapshot_records: u64,
    /// Records replayed from the WAL suffix.
    pub wal_records: u64,
    /// Bytes cut from the WAL tail (torn final append). Steady state, not
    /// an error.
    pub torn_bytes: u64,
    /// A checksum/decoding failure stopped a replay early. The longest
    /// valid prefix was kept; the caller decides how loudly to complain.
    pub corrupt: bool,
    /// Expected files that were missing on reopen (manifest excluded —
    /// a missing manifest just means a fresh store).
    pub missing_files: u64,
    /// Objects recovered into the in-memory image.
    pub recovered_objects: u64,
}

/// The outcome of one snapshot compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// The new live generation.
    pub generation: u64,
    /// Records written into the snapshot.
    pub records: u64,
}

/// Configuration for a [`WalStore`].
#[derive(Debug, Clone)]
pub struct WalStoreConfig {
    /// The store's directory (one per node).
    pub dir: PathBuf,
    /// When appends are fsynced.
    pub fsync: FsyncPolicy,
    /// Largest accepted record payload (defaults to the frame layer's
    /// 4 MiB).
    pub max_frame: u32,
    /// Auto-compact once the live WAL holds this many records (0 = manual
    /// compaction only).
    pub compact_after: u64,
}

impl WalStoreConfig {
    /// Defaults: `fsync=Always`, 4 MiB frames, compaction every 4096
    /// records.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> WalStoreConfig {
        WalStoreConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            max_frame: FrameConfig::default().max_frame,
            compact_after: 4096,
        }
    }

    /// Same defaults under `fsync`.
    #[must_use]
    pub fn with_fsync(dir: impl Into<PathBuf>, fsync: FsyncPolicy) -> WalStoreConfig {
        WalStoreConfig {
            fsync,
            ..WalStoreConfig::new(dir)
        }
    }
}

/// The durable checkpoint store. See the module docs for the layout and
/// the recovery contract.
pub struct WalStore {
    cfg: WalStoreConfig,
    fs: Arc<dyn Storage>,
    map: HashMap<ObjectId, StoredCheckpoint>,
    floors: HashMap<ObjectId, u64>,
    meta: HashMap<u32, u64>,
    generation: u64,
    unsynced: u64,
    last_sync: Instant,
    stats: WalStats,
}

impl WalStore {
    /// Opens (or creates) the store at `cfg.dir` on the real filesystem,
    /// replaying snapshot + WAL. The report says what recovery found; a
    /// torn WAL tail has already been truncated away.
    ///
    /// # Errors
    /// [`StoreError`] on IO failures. Corruption is *not* an error — it is
    /// reported in [`RecoveryReport::corrupt`] with the longest valid
    /// prefix recovered.
    pub fn open(cfg: WalStoreConfig) -> Result<(WalStore, RecoveryReport), StoreError> {
        WalStore::open_with(cfg, Arc::new(RealFs))
    }

    /// [`open`](Self::open) against any [`Storage`] — the chaos tests pass
    /// a [`super::FaultFs`].
    ///
    /// # Errors
    /// As [`open`](Self::open).
    pub fn open_with(
        cfg: WalStoreConfig,
        fs: Arc<dyn Storage>,
    ) -> Result<(WalStore, RecoveryReport), StoreError> {
        fs.create_dir_all(&cfg.dir)
            .map_err(|e| StoreError::io("create_dir_all", &cfg.dir, &e))?;
        let mut store = WalStore {
            cfg,
            fs,
            map: HashMap::new(),
            floors: HashMap::new(),
            meta: HashMap::new(),
            generation: 0,
            unsynced: 0,
            last_sync: Instant::now(),
            stats: WalStats::default(),
        };
        let report = store.recover()?;
        Ok((store, report))
    }

    fn manifest_path(&self) -> PathBuf {
        self.cfg.dir.join("MANIFEST")
    }

    fn snap_path(&self, generation: u64) -> PathBuf {
        self.cfg.dir.join(format!("snap-{generation}.bin"))
    }

    fn wal_path(&self, generation: u64) -> PathBuf {
        self.cfg.dir.join(format!("wal-{generation}.log"))
    }

    /// Replays manifest → snapshot → WAL into the in-memory image,
    /// truncating the WAL at the first torn/corrupt record.
    fn recover(&mut self) -> Result<RecoveryReport, StoreError> {
        let mut report = RecoveryReport::default();

        // manifest: names the live generation; missing = fresh store
        let manifest = self.manifest_path();
        match self.fs.read(&manifest) {
            Ok(bytes) => match decode_manifest(&bytes, self.cfg.max_frame) {
                Some(generation) => self.generation = generation,
                None => {
                    // an unreadable manifest orphans both generations; start
                    // fresh but say so — never silently accept corruption
                    report.corrupt = true;
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::io("read", &manifest, &e)),
        }
        report.generation = self.generation;

        // snapshot: written atomically, so a bad record is bitrot, not a
        // torn write — keep the valid prefix and flag it
        if self.generation > 0 {
            let snap = self.snap_path(self.generation);
            match self.fs.read(&snap) {
                Ok(bytes) => {
                    let seg = replay_segment(&bytes, self.cfg.max_frame);
                    report.snapshot_records = seg.records.len() as u64;
                    report.corrupt |= seg.corrupt;
                    for rec in seg.records {
                        self.apply(rec);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    report.missing_files += 1;
                }
                Err(e) => return Err(StoreError::io("read", &snap, &e)),
            }
        }

        // WAL suffix: torn tail is steady state — truncate to the last
        // whole record; corruption also truncates but is flagged
        let wal = self.wal_path(self.generation);
        match self.fs.read(&wal) {
            Ok(bytes) => {
                let seg = replay_segment(&bytes, self.cfg.max_frame);
                report.wal_records = seg.records.len() as u64;
                report.torn_bytes = seg.torn_bytes;
                report.corrupt |= seg.corrupt;
                if seg.torn_bytes > 0 {
                    self.fs
                        .truncate(&wal, seg.valid_bytes)
                        .map_err(|e| StoreError::io("truncate", &wal, &e))?;
                }
                self.stats.wal_records = seg.records.len() as u64;
                self.stats.wal_bytes = seg.valid_bytes;
                for rec in seg.records {
                    self.apply(rec);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::io("read", &wal, &e)),
        }

        self.stats.generation = self.generation;
        report.recovered_objects = self.map.len() as u64;
        Ok(report)
    }

    fn apply(&mut self, rec: WalRecord) {
        match rec {
            WalRecord::Put {
                object,
                object_epoch,
                seq,
                type_tag,
                state,
            } => {
                let floor = self.floors.entry(object).or_insert(0);
                *floor = (*floor).max(object_epoch);
                self.map.insert(
                    object,
                    StoredCheckpoint {
                        type_tag,
                        state,
                        object_epoch,
                        seq,
                    },
                );
            }
            WalRecord::Remove { object } => {
                self.map.remove(&object);
            }
            WalRecord::Clear => self.map.clear(),
            WalRecord::Epoch { object, epoch } => {
                let floor = self.floors.entry(object).or_insert(0);
                *floor = (*floor).max(epoch);
            }
            WalRecord::Meta { key, value } => {
                self.meta.insert(key, value);
            }
        }
    }

    /// Appends `rec` to the live WAL and applies it to the in-memory
    /// image, then syncs per policy.
    fn log(&mut self, rec: WalRecord) -> Result<Durability, StoreError> {
        let mut frame = Vec::new();
        encode_record(&rec, &mut frame);
        let wal = self.wal_path(self.generation);
        self.fs
            .append(&wal, &frame)
            .map_err(|e| StoreError::io("append", &wal, &e))?;
        self.stats.appended += 1;
        self.stats.wal_records += 1;
        self.stats.wal_bytes += frame.len() as u64;
        self.unsynced += 1;
        self.apply(rec);
        let durability = self.sync_per_policy()?;
        if self.cfg.compact_after > 0 && self.stats.wal_records >= self.cfg.compact_after {
            self.compact()?;
        }
        Ok(durability)
    }

    fn sync_per_policy(&mut self) -> Result<Durability, StoreError> {
        let due = match self.cfg.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Batch { n, ms } => {
                self.unsynced >= n.max(1) || self.last_sync.elapsed().as_millis() as u64 >= ms
            }
            FsyncPolicy::Never => false,
        };
        if due {
            self.sync_now()?;
            Ok(Durability::Durable)
        } else {
            Ok(Durability::Buffered)
        }
    }

    fn sync_now(&mut self) -> Result<u64, StoreError> {
        if self.unsynced == 0 {
            self.last_sync = Instant::now();
            return Ok(0);
        }
        let wal = self.wal_path(self.generation);
        self.fs
            .sync(&wal)
            .map_err(|e| StoreError::io("sync", &wal, &e))?;
        let made = self.unsynced;
        self.unsynced = 0;
        self.last_sync = Instant::now();
        self.stats.syncs += 1;
        self.stats.synced += made;
        Ok(made)
    }

    /// All live records in deterministic order — what a snapshot holds.
    fn snapshot_records(&self) -> Vec<WalRecord> {
        let mut recs = Vec::new();
        let mut metas: Vec<(u32, u64)> = self.meta.iter().map(|(&k, &v)| (k, v)).collect();
        metas.sort_unstable();
        for (key, value) in metas {
            recs.push(WalRecord::Meta { key, value });
        }
        let mut floors: Vec<(ObjectId, u64)> = self
            .floors
            .iter()
            .filter(|(_, &e)| e > 0)
            .map(|(&o, &e)| (o, e))
            .collect();
        floors.sort_unstable_by_key(|&(o, _)| o.as_u32());
        for (object, epoch) in floors {
            recs.push(WalRecord::Epoch { object, epoch });
        }
        let mut objects: Vec<ObjectId> = self.map.keys().copied().collect();
        objects.sort_unstable_by_key(|o| o.as_u32());
        for object in objects {
            let ck = &self.map[&object];
            recs.push(WalRecord::Put {
                object,
                object_epoch: ck.object_epoch,
                seq: ck.seq,
                type_tag: ck.type_tag.clone(),
                state: ck.state.clone(),
            });
        }
        recs
    }

    /// Compacts: snapshot the live image into generation `g+1` (written
    /// atomically), start an empty WAL, flip the manifest, delete the old
    /// generation. Crash-safe at every step — the manifest flip is the
    /// commit point.
    ///
    /// # Errors
    /// [`StoreError`] on IO failures; the store remains usable on the old
    /// generation if the flip never happened.
    pub fn compact(&mut self) -> Result<CompactionReport, StoreError> {
        let old = self.generation;
        let new = old + 1;
        let recs = self.snapshot_records();
        let mut snap_bytes = Vec::new();
        for rec in &recs {
            encode_record(rec, &mut snap_bytes);
        }
        let snap = self.snap_path(new);
        let snap_tmp = self.cfg.dir.join(format!("snap-{new}.tmp"));
        self.fs
            .write_atomic(&snap_tmp, &snap, &snap_bytes)
            .map_err(|e| StoreError::io("write_atomic", &snap, &e))?;
        let wal_new = self.wal_path(new);
        self.fs
            .write(&wal_new, &[])
            .map_err(|e| StoreError::io("write", &wal_new, &e))?;
        let manifest_bytes = encode_manifest(new);
        let manifest = self.manifest_path();
        let manifest_tmp = self.cfg.dir.join("MANIFEST.tmp");
        self.fs
            .write_atomic(&manifest_tmp, &manifest, &manifest_bytes)
            .map_err(|e| StoreError::io("write_atomic", &manifest, &e))?;
        // the flip committed; the old generation is garbage now
        if old > 0 {
            let _ = self.fs.remove(&self.snap_path(old));
        }
        let _ = self.fs.remove(&self.wal_path(old));
        self.generation = new;
        self.unsynced = 0;
        self.stats.wal_records = 0;
        self.stats.wal_bytes = 0;
        self.stats.compactions += 1;
        self.stats.generation = new;
        Ok(CompactionReport {
            generation: new,
            records: recs.len() as u64,
        })
    }

    /// The store's directory.
    #[must_use]
    pub fn dir(&self) -> &std::path::Path {
        &self.cfg.dir
    }

    /// The live WAL file's path (what a torn-write harness corrupts).
    #[must_use]
    pub fn live_wal_path(&self) -> PathBuf {
        self.wal_path(self.generation)
    }
}

fn encode_manifest(generation: u64) -> Vec<u8> {
    let payload = WireWriter::new()
        .u32(MANIFEST_MAGIC)
        .u32(MANIFEST_VERSION)
        .u64(generation)
        .finish();
    let mut out = Vec::new();
    encode_frame(&payload, &mut out);
    out
}

fn decode_manifest(bytes: &[u8], max_frame: u32) -> Option<u64> {
    let mut dec = FrameDecoder::new(FrameConfig { max_frame });
    dec.extend(bytes);
    let payload = dec.next_frame().ok()??;
    let mut r = WireReader::new(&payload);
    if r.u32().ok()? != MANIFEST_MAGIC || r.u32().ok()? != MANIFEST_VERSION {
        return None;
    }
    r.u64().ok()
}

impl CheckpointStore for WalStore {
    fn get(&self, object: ObjectId) -> Option<&StoredCheckpoint> {
        self.map.get(&object)
    }

    fn put(&mut self, object: ObjectId, ckpt: StoredCheckpoint) -> Result<Durability, StoreError> {
        self.log(WalRecord::Put {
            object,
            object_epoch: ckpt.object_epoch,
            seq: ckpt.seq,
            type_tag: ckpt.type_tag,
            state: ckpt.state,
        })
    }

    fn remove(&mut self, object: ObjectId) -> Result<(), StoreError> {
        if !self.map.contains_key(&object) {
            return Ok(());
        }
        self.log(WalRecord::Remove { object }).map(|_| ())
    }

    fn clear(&mut self) -> Result<(), StoreError> {
        if self.map.is_empty() {
            return Ok(());
        }
        self.log(WalRecord::Clear).map(|_| ())
    }

    fn objects(&self) -> Vec<ObjectId> {
        self.map.keys().copied().collect()
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn sync(&mut self) -> Result<u64, StoreError> {
        self.sync_now()
    }

    fn note_epoch(&mut self, object: ObjectId, epoch: u64) -> Result<Durability, StoreError> {
        if self.epoch_floor(object) >= epoch {
            return Ok(Durability::Durable); // already on stable storage
        }
        self.log(WalRecord::Epoch { object, epoch })
    }

    fn epoch_floor(&self, object: ObjectId) -> u64 {
        self.floors.get(&object).copied().unwrap_or(0)
    }

    fn epoch_floors(&self) -> Vec<(ObjectId, u64)> {
        self.floors
            .iter()
            .filter(|(_, &e)| e > 0)
            .map(|(&o, &e)| (o, e))
            .collect()
    }

    fn set_meta(&mut self, key: u32, value: u64) -> Result<Durability, StoreError> {
        self.log(WalRecord::Meta { key, value })
    }

    fn meta(&self, key: u32) -> Option<u64> {
        self.meta.get(&key).copied()
    }

    fn wal_stats(&self) -> WalStats {
        self.stats
    }

    fn durable_backed(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::FaultFs;

    fn ckpt(epoch: u64, seq: u64, state: &[u8]) -> StoredCheckpoint {
        StoredCheckpoint {
            type_tag: "counter".into(),
            state: Bytes::copy_from_slice(state),
            object_epoch: epoch,
            seq,
        }
    }

    fn cfg(fsync: FsyncPolicy) -> WalStoreConfig {
        WalStoreConfig {
            compact_after: 0,
            ..WalStoreConfig::with_fsync("/virtual/store", fsync)
        }
    }

    #[test]
    fn records_round_trip() {
        let records = [
            WalRecord::Put {
                object: ObjectId::new(7),
                object_epoch: 3,
                seq: 9,
                type_tag: "counter".into(),
                state: Bytes::copy_from_slice(&[1, 2, 3]),
            },
            WalRecord::Remove {
                object: ObjectId::new(7),
            },
            WalRecord::Clear,
            WalRecord::Epoch {
                object: ObjectId::new(8),
                epoch: 4,
            },
            WalRecord::Meta { key: 2, value: 11 },
        ];
        let mut wire = Vec::new();
        for rec in &records {
            encode_record(rec, &mut wire);
        }
        let seg = replay_segment(&wire, 4 << 20);
        assert!(!seg.corrupt);
        assert_eq!(seg.torn_bytes, 0);
        assert_eq!(seg.records, records);
    }

    #[test]
    fn truncated_tail_is_steady_state() {
        let mut wire = Vec::new();
        encode_record(&WalRecord::Meta { key: 1, value: 1 }, &mut wire);
        let whole = wire.len() as u64;
        encode_record(&WalRecord::Meta { key: 2, value: 2 }, &mut wire);
        let seg = replay_segment(&wire[..wire.len() - 3], 4 << 20);
        assert!(!seg.corrupt, "truncation is not corruption");
        assert_eq!(seg.records.len(), 1);
        assert_eq!(seg.valid_bytes, whole);
        assert!(seg.torn_bytes > 0);
    }

    #[test]
    fn reopen_replays_the_wal() {
        let fs = Arc::new(FaultFs::new());
        let o = ObjectId::new(1);
        {
            let (mut s, r) = WalStore::open_with(cfg(FsyncPolicy::Always), fs.clone()).unwrap();
            assert_eq!(r, RecoveryReport::default());
            assert!(s.put(o, ckpt(1, 0, b"a")).unwrap().is_durable());
            assert!(s.put(o, ckpt(1, 1, b"ab")).unwrap().is_durable());
            let _ = s.note_epoch(o, 5).unwrap();
        }
        let (s, r) = WalStore::open_with(cfg(FsyncPolicy::Always), fs).unwrap();
        assert_eq!(r.wal_records, 3);
        assert_eq!(r.recovered_objects, 1);
        assert!(!r.corrupt);
        assert_eq!(s.get(o).unwrap().state, Bytes::copy_from_slice(b"ab"));
        assert_eq!(s.get(o).unwrap().version(), (1, 1));
        assert_eq!(s.epoch_floor(o), 5, "floors survive restart");
    }

    #[test]
    fn fsync_always_survives_power_loss_never_does_not() {
        for (policy, survives) in [(FsyncPolicy::Always, true), (FsyncPolicy::Never, false)] {
            let fs = Arc::new(FaultFs::new());
            let o = ObjectId::new(1);
            {
                let (mut s, _) = WalStore::open_with(cfg(policy), fs.clone()).unwrap();
                let d = s.put(o, ckpt(1, 0, b"a")).unwrap();
                assert_eq!(d.is_durable(), survives, "{policy}");
            }
            fs.power_loss();
            let (s, r) = WalStore::open_with(cfg(policy), fs).unwrap();
            assert_eq!(s.get(o).is_some(), survives, "{policy}");
            assert!(!r.corrupt);
        }
    }

    #[test]
    fn batch_policy_syncs_on_count() {
        let fs = Arc::new(FaultFs::new());
        let (mut s, _) = WalStore::open_with(
            cfg(FsyncPolicy::Batch {
                n: 2,
                ms: 1_000_000,
            }),
            fs,
        )
        .unwrap();
        let o = ObjectId::new(1);
        assert!(!s.put(o, ckpt(1, 0, b"a")).unwrap().is_durable());
        assert!(s.put(o, ckpt(1, 1, b"b")).unwrap().is_durable());
        assert_eq!(s.wal_stats().syncs, 1);
        assert_eq!(s.wal_stats().synced, 2);
    }

    #[test]
    fn torn_append_truncates_on_reopen() {
        let fs = Arc::new(FaultFs::new());
        let o = ObjectId::new(1);
        {
            let (mut s, _) = WalStore::open_with(cfg(FsyncPolicy::Always), fs.clone()).unwrap();
            let _ = s.put(o, ckpt(1, 0, b"good")).unwrap();
            fs.torn_write(2, 5); // next append keeps 5 bytes then "dies"
            assert!(s
                .put(o, ckpt(1, 1, b"lost"))
                .unwrap_err()
                .to_string()
                .contains("torn"));
        }
        let (s, r) = WalStore::open_with(cfg(FsyncPolicy::Always), fs.clone()).unwrap();
        assert!(!r.corrupt, "a torn tail is steady state");
        assert_eq!(r.torn_bytes, 5);
        assert_eq!(s.get(o).unwrap().version(), (1, 0));
        // and the file really was cut back to the valid prefix
        let wal = s.live_wal_path();
        assert_eq!(fs.file_len(&wal), Some(s.wal_stats().wal_bytes as usize));
    }

    #[test]
    fn bit_flip_is_flagged_never_silent() {
        let fs = Arc::new(FaultFs::new());
        let o = ObjectId::new(1);
        let wal = {
            let (mut s, _) = WalStore::open_with(cfg(FsyncPolicy::Always), fs.clone()).unwrap();
            let _ = s.put(o, ckpt(1, 0, b"aaaa")).unwrap();
            let _ = s.put(o, ckpt(1, 1, b"bbbb")).unwrap();
            s.live_wal_path()
        };
        let len = fs.file_len(&wal).unwrap() as u64;
        assert!(fs.flip_bit(&wal, (len - 4) * 8));
        let (s, r) = WalStore::open_with(cfg(FsyncPolicy::Always), fs).unwrap();
        assert!(r.corrupt, "corruption must be reported");
        assert_eq!(s.get(o).unwrap().version(), (1, 0), "longest valid prefix");
    }

    #[test]
    fn compaction_survives_reopen_and_prunes_the_old_generation() {
        let fs = Arc::new(FaultFs::new());
        let o1 = ObjectId::new(1);
        let o2 = ObjectId::new(2);
        {
            let (mut s, _) = WalStore::open_with(cfg(FsyncPolicy::Always), fs.clone()).unwrap();
            let _ = s.put(o1, ckpt(2, 7, b"one")).unwrap();
            let _ = s.put(o2, ckpt(1, 3, b"two")).unwrap();
            s.remove(o2).unwrap();
            let _ = s.set_meta(9, 99).unwrap();
            let rep = s.compact().unwrap();
            assert_eq!(rep.generation, 1);
            // old wal gone, fresh wal empty
            assert!(fs.read(&s.wal_path(0)).is_err());
            assert_eq!(s.wal_stats().wal_records, 0);
            let _ = s.put(o2, ckpt(4, 0, b"back")).unwrap();
        }
        fs.power_loss();
        let (s, r) = WalStore::open_with(cfg(FsyncPolicy::Always), fs).unwrap();
        assert_eq!(r.generation, 1);
        assert!(!r.corrupt);
        assert_eq!(s.get(o1).unwrap().state, Bytes::copy_from_slice(b"one"));
        assert_eq!(s.get(o2).unwrap().version(), (4, 0));
        assert_eq!(s.epoch_floor(o2), 4);
        assert_eq!(s.meta(9), Some(99));
    }

    #[test]
    fn auto_compaction_fires_at_the_threshold() {
        let fs = Arc::new(FaultFs::new());
        let mut cfg = cfg(FsyncPolicy::Always);
        cfg.compact_after = 3;
        let (mut s, _) = WalStore::open_with(cfg, fs).unwrap();
        for i in 0..7u64 {
            let _ = s.put(ObjectId::new(1), ckpt(1, i, b"x")).unwrap();
        }
        assert!(s.wal_stats().compactions >= 2);
        assert!(s.wal_stats().wal_records < 3);
        assert_eq!(s.get(ObjectId::new(1)).unwrap().version(), (1, 6));
    }

    #[test]
    fn clear_keeps_floors_and_meta() {
        let fs = Arc::new(FaultFs::new());
        let o = ObjectId::new(3);
        {
            let (mut s, _) = WalStore::open_with(cfg(FsyncPolicy::Always), fs.clone()).unwrap();
            let _ = s.put(o, ckpt(6, 0, b"x")).unwrap();
            let _ = s.set_meta(1, 2).unwrap();
            s.clear().unwrap();
        }
        let (s, _) = WalStore::open_with(cfg(FsyncPolicy::Always), fs).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.epoch_floor(o), 6);
        assert_eq!(s.meta(1), Some(2));
    }

    #[test]
    fn vanished_snapshot_is_reported() {
        let fs = Arc::new(FaultFs::new());
        {
            let (mut s, _) = WalStore::open_with(cfg(FsyncPolicy::Always), fs.clone()).unwrap();
            let _ = s.put(ObjectId::new(1), ckpt(1, 0, b"x")).unwrap();
            s.compact().unwrap();
            fs.vanish_on_reopen(&s.snap_path(1));
        }
        let (s, r) = WalStore::open_with(cfg(FsyncPolicy::Always), fs).unwrap();
        assert_eq!(r.missing_files, 1);
        assert!(s.is_empty(), "the snapshot's state is gone");
    }

    #[test]
    fn corrupt_manifest_is_flagged_and_store_starts_fresh() {
        let fs = Arc::new(FaultFs::new());
        let manifest = {
            let (mut s, _) = WalStore::open_with(cfg(FsyncPolicy::Always), fs.clone()).unwrap();
            let _ = s.put(ObjectId::new(1), ckpt(1, 0, b"x")).unwrap();
            s.compact().unwrap();
            s.manifest_path()
        };
        assert!(fs.flip_bit(&manifest, 9 * 8));
        let (_, r) = WalStore::open_with(cfg(FsyncPolicy::Always), fs).unwrap();
        assert!(r.corrupt);
        assert_eq!(r.generation, 0);
    }
}
