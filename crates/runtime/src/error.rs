//! Runtime error type.

use oml_core::ids::{NodeId, ObjectId};
use std::error::Error;
use std::fmt;

/// Everything that can go wrong talking to a [`crate::Cluster`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The object id is not (or no longer) known to the cluster.
    UnknownObject(ObjectId),
    /// The node id is outside the cluster.
    UnknownNode(NodeId),
    /// No delinearizer was registered for the given type tag before a
    /// migration tried to reinstall an object of that type.
    UnknownType(String),
    /// The object's own `invoke` reported a failure.
    MethodFailed {
        /// The object whose method failed.
        object: ObjectId,
        /// The failure message produced by the object.
        message: String,
    },
    /// A message chased a migrating object for too many hops (the object is
    /// bouncing faster than the forwarding can catch up).
    TooManyHops(ObjectId),
    /// The cluster is shutting down; the operation was dropped.
    ShuttingDown,
    /// A blocking call's deadline elapsed before a reply arrived — the node
    /// may be crashed, partitioned away, or the message was lost.
    Timeout {
        /// How long the caller waited, in milliseconds (summed over retries).
        waited_ms: u64,
    },
    /// The target node is currently suspected or declared dead by the
    /// failure detector; the call failed fast instead of sleeping out its
    /// deadline. Retrying after the object is reinstantiated (or the node
    /// heals) will succeed.
    NodeDown(NodeId),
    /// [`crate::Cluster::restart_node`] was called on a node whose worker is
    /// still running — restarting a live node would re-seed its recovery
    /// state (incarnation, health, breaker) inconsistently with the live
    /// worker's view. Only crashed or declared-dead nodes can be restarted.
    NotDead(NodeId),
    /// An operation declaration was invoked with the wrong number of object
    /// arguments.
    ArityMismatch {
        /// Parameters the declaration names.
        expected: usize,
        /// Object arguments supplied.
        got: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownObject(o) => write!(f, "unknown object {o}"),
            RuntimeError::UnknownNode(n) => write!(f, "unknown node {n}"),
            RuntimeError::UnknownType(t) => write!(f, "no delinearizer registered for type `{t}`"),
            RuntimeError::MethodFailed { object, message } => {
                write!(f, "invocation on {object} failed: {message}")
            }
            RuntimeError::TooManyHops(o) => {
                write!(f, "message chasing {o} exceeded the forwarding hop limit")
            }
            RuntimeError::ShuttingDown => write!(f, "cluster is shutting down"),
            RuntimeError::Timeout { waited_ms } => {
                write!(f, "no reply within the deadline (waited {waited_ms} ms)")
            }
            RuntimeError::NodeDown(n) => {
                write!(f, "node {n} is suspected or dead; call failed fast")
            }
            RuntimeError::NotDead(n) => {
                write!(f, "node {n} is still running; only dead nodes restart")
            }
            RuntimeError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "declaration expects {expected} object arguments, got {got}"
                )
            }
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        assert!(RuntimeError::UnknownObject(ObjectId::new(3))
            .to_string()
            .contains("o3"));
        assert!(RuntimeError::UnknownType("counter".into())
            .to_string()
            .contains("counter"));
        let e = RuntimeError::MethodFailed {
            object: ObjectId::new(1),
            message: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn timeout_display_includes_the_wait() {
        let e = RuntimeError::Timeout { waited_ms: 750 };
        let s = e.to_string();
        assert!(s.contains("750 ms"), "{s}");
        assert!(s.contains("deadline"), "{s}");
    }

    #[test]
    fn node_down_display_names_the_node() {
        let s = RuntimeError::NodeDown(NodeId::new(2)).to_string();
        assert!(s.contains("n2"), "{s}");
        assert!(s.contains("failed fast"), "{s}");
    }

    #[test]
    fn not_dead_display_names_the_node() {
        let s = RuntimeError::NotDead(NodeId::new(4)).to_string();
        assert!(s.contains("n4"), "{s}");
        assert!(s.contains("still running"), "{s}");
    }

    #[test]
    fn is_send_sync_error() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<RuntimeError>();
    }
}
