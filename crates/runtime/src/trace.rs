//! Trace collection and lock-order recording support for the runtime.
//!
//! Two pieces of instrumentation live here, both consumed by `oml-check`:
//!
//! * [`TraceCollector`] — gathers the structured protocol events
//!   ([`oml_check::event::TraceEvent`]) the checker's invariant analysis
//!   replays. Collection is opt-in ([`crate::ClusterBuilder::trace`]); a
//!   disabled collector is a handful of branch instructions on the hot
//!   path. Each thread appends its own events, so the per-process slices of
//!   the collected vector are program order — exactly what the checker's
//!   vector-clock construction requires.
//! * [`OrderedMutex`] / [`OrderedRwLock`] — the runtime's named lock sites.
//!   In debug builds every acquisition/release is reported to
//!   [`oml_check::lockorder`], which accumulates the global lock-acquisition
//!   graph and fails on cycles. Release builds compile the recording away
//!   entirely.
//!
//! The collector's own mutex and the fault injector's internal locks are
//! deliberately *not* ordered sites: they are leaf infrastructure that never
//! acquires another lock while held. The documented allowlist of legal
//! orderings lives in [`KNOWN_LOCK_ORDER`] and DESIGN.md §10.

use std::sync::atomic::{AtomicU64, Ordering};

use oml_check::event::{EventKind, TraceEvent};

/// The legal (documented) lock-acquisition orderings of this crate. The
/// `repro check` lock-order gate fails when an execution exhibits a nesting
/// outside this list — a new nesting must be reviewed for deadlock safety
/// and added here *and* to DESIGN.md §10.4.
///
/// * `shared.alliances -> shared.attachments`: `Cluster::attach` validates
///   the cooperation context against the alliance registry while inserting
///   the edge, so the registry guard spans the attachment update.
/// * `shared.epoch_lock -> shared.directory`: declare-dead snapshots the
///   dead node's directory entries while holding the epoch decision lock,
///   so a concurrent rejoin cannot interleave between verdict and snapshot.
/// * `shared.epoch_lock -> shared.object_epochs`: the same declare-dead
///   critical section bumps the stranded objects' epochs (and stash
///   reclamation reads them) under the epoch lock — the fencing decision
///   and the epoch bump must be atomic.
/// * `cluster.handles -> shared.epoch_lock`: `Cluster::restart_node` holds
///   the worker-handle table while rejoining (reap-check, rejoin and
///   respawn must be atomic against a concurrent restart); no epoch-lock
///   section ever takes the handle table, so the edge is one-way.
pub const KNOWN_LOCK_ORDER: &[(&str, &str)] = &[
    ("shared.alliances", "shared.attachments"),
    ("shared.epoch_lock", "shared.directory"),
    ("shared.epoch_lock", "shared.object_epochs"),
    ("cluster.handles", "shared.epoch_lock"),
];

/// Collects protocol trace events from every thread of a cluster.
pub(crate) struct TraceCollector {
    enabled: bool,
    events: parking_lot::Mutex<Vec<TraceEvent>>,
    /// Message ids start at 1; id 0 marks an untraced envelope.
    next_msg_id: AtomicU64,
}

impl TraceCollector {
    pub(crate) fn new(enabled: bool) -> Self {
        TraceCollector {
            enabled,
            events: parking_lot::Mutex::new(Vec::new()),
            next_msg_id: AtomicU64::new(1),
        }
    }

    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends one event. Call from the acting thread only, so per-process
    /// slices stay in program order. Lock-state events (acquire, release,
    /// renew) must additionally be emitted while holding the policy guard:
    /// the policy mutex is what orders the lock table, and emitting outside
    /// it could interleave a release/acquire pair backwards in the
    /// collected trace. The collector's own mutex is a leaf.
    pub(crate) fn emit(&self, process: u32, kind: EventKind) {
        if self.enabled {
            self.events.lock().push(TraceEvent::new(process, kind));
        }
    }

    /// A fresh message id (0 when tracing is off — the untraced marker).
    pub(crate) fn next_msg_id(&self) -> u64 {
        if self.enabled {
            self.next_msg_id.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        }
    }

    /// Drains the collected events.
    pub(crate) fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock())
    }
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCollector")
            .field("enabled", &self.enabled)
            .field("events", &self.events.lock().len())
            .finish()
    }
}

/// A `parking_lot::Mutex` that reports its acquisitions to the lock-order
/// analyzer in debug builds. The site name must be unique per lock.
pub(crate) struct OrderedMutex<T> {
    #[cfg(debug_assertions)]
    name: &'static str,
    inner: parking_lot::Mutex<T>,
}

impl<T> OrderedMutex<T> {
    pub(crate) fn new(name: &'static str, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = name;
        OrderedMutex {
            #[cfg(debug_assertions)]
            name,
            inner: parking_lot::Mutex::new(value),
        }
    }

    pub(crate) fn lock(&self) -> OrderedMutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        oml_check::lockorder::on_acquire(self.name);
        OrderedMutexGuard {
            #[cfg(debug_assertions)]
            name: self.name,
            inner: self.inner.lock(),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

pub(crate) struct OrderedMutexGuard<'a, T> {
    #[cfg(debug_assertions)]
    name: &'static str,
    inner: parking_lot::MutexGuard<'a, T>,
}

impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        oml_check::lockorder::on_release(self.name);
    }
}

/// A `parking_lot::RwLock` that reports its acquisitions (read and write
/// alike — the deadlock analysis does not distinguish shared from exclusive
/// holds) to the lock-order analyzer in debug builds.
pub(crate) struct OrderedRwLock<T> {
    #[cfg(debug_assertions)]
    name: &'static str,
    inner: parking_lot::RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    pub(crate) fn new(name: &'static str, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = name;
        OrderedRwLock {
            #[cfg(debug_assertions)]
            name,
            inner: parking_lot::RwLock::new(value),
        }
    }

    pub(crate) fn read(&self) -> OrderedReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        oml_check::lockorder::on_acquire(self.name);
        OrderedReadGuard {
            #[cfg(debug_assertions)]
            name: self.name,
            inner: self.inner.read(),
        }
    }

    pub(crate) fn write(&self) -> OrderedWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        oml_check::lockorder::on_acquire(self.name);
        OrderedWriteGuard {
            #[cfg(debug_assertions)]
            name: self.name,
            inner: self.inner.write(),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

pub(crate) struct OrderedReadGuard<'a, T> {
    #[cfg(debug_assertions)]
    name: &'static str,
    inner: parking_lot::RwLockReadGuard<'a, T>,
}

impl<T> std::ops::Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Drop for OrderedReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        oml_check::lockorder::on_release(self.name);
    }
}

pub(crate) struct OrderedWriteGuard<'a, T> {
    #[cfg(debug_assertions)]
    name: &'static str,
    inner: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T> std::ops::Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for OrderedWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        oml_check::lockorder::on_release(self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oml_core::ids::ObjectId;

    #[test]
    fn disabled_collector_records_nothing_and_ids_are_zero() {
        let c = TraceCollector::new(false);
        assert!(!c.is_enabled());
        assert_eq!(c.next_msg_id(), 0);
        c.emit(
            0,
            EventKind::Install {
                object: ObjectId::new(0),
            },
        );
        assert!(c.take().is_empty());
    }

    #[test]
    fn enabled_collector_keeps_order_and_unique_ids() {
        let c = TraceCollector::new(true);
        let a = c.next_msg_id();
        let b = c.next_msg_id();
        assert!(a >= 1 && b > a);
        c.emit(
            1,
            EventKind::Install {
                object: ObjectId::new(4),
            },
        );
        c.emit(1, EventKind::Recv { msg_id: a });
        let events = c.take();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0].kind, EventKind::Install { .. }));
        assert!(c.take().is_empty());
    }

    #[test]
    fn ordered_locks_deref_to_their_values() {
        let m = OrderedMutex::new("test.m", 1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = OrderedRwLock::new("test.rw", 5u32);
        *rw.write() += 1;
        assert_eq!(*rw.read(), 6);
    }
}
