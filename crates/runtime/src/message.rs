//! Inter-node messages (crate-internal).

use std::time::Instant;

use bytes::Bytes;
use crossbeam::channel::Sender;
use oml_core::ids::{AllianceId, BlockId, NodeId, ObjectId};

use crate::error::RuntimeError;
use crate::object::MobileObject;

/// Reply channel for invocations.
pub(crate) type InvokeReply = Sender<Result<Bytes, RuntimeError>>;
/// Reply channel for move-requests (`Ok(true)` = granted).
pub(crate) type MoveReply = Sender<Result<bool, RuntimeError>>;

/// Everything node workers exchange.
pub(crate) enum Message {
    /// Install a freshly created object (ships the live instance).
    Create {
        object: ObjectId,
        instance: Box<dyn MobileObject>,
        reply: Sender<Result<(), RuntimeError>>,
    },
    /// A trapped invocation, forwarded to the object's location.
    Invoke {
        object: ObjectId,
        method: String,
        payload: Bytes,
        hops: u8,
        reply: InvokeReply,
    },
    /// A `move()`-request, interpreted by the policy at the callee's node.
    MoveRequest {
        object: ObjectId,
        to: NodeId,
        block: BlockId,
        context: Option<AllianceId>,
        hops: u8,
        /// The requester's deadline (its `await_reply` budget). A node that
        /// processes the request after this instant denies it: the requester
        /// has already timed out and dropped its guard, so a grant could only
        /// orphan a placement lock — and ship the object into a race with
        /// whatever the requester is doing instead.
        expires: Instant,
        reply: MoveReply,
    },
    /// A linearized object arriving at its new node.
    Install {
        object: ObjectId,
        type_tag: String,
        state: Bytes,
        /// The object's epoch at ship time. When the failure detector is
        /// active, receivers reject installs older than the object's current
        /// epoch — a pre-crash install queued behind a reinstantiation can
        /// never resurrect the dead incarnation's copy. Always 0 without a
        /// detector.
        object_epoch: u64,
        /// `Some` when this install completes a granted move: the block to
        /// install for and the requester to notify.
        install_for: Option<(BlockId, MoveReply)>,
    },
    /// Ship a locally hosted closure member towards `to` (no notification).
    Surrender { object: ObjectId, to: NodeId },
    /// A move-block completed.
    EndRequest {
        object: ObjectId,
        block: BlockId,
        from: NodeId,
        was_granted: bool,
        context: Option<AllianceId>,
        hops: u8,
    },
    /// A checkpoint refresh propagating to a replica: the wire-encoded
    /// [`crate::wire::CheckpointFrame`] (type tag, linearized state and the
    /// `(object_epoch, seq)` freshness stamp). The receiver stores it if
    /// fresher than its current copy and always acks back to the sender.
    CheckpointPut { object: ObjectId, frame: Bytes },
    /// A replica's acknowledgement of a [`Message::CheckpointPut`]. Acks are
    /// deduplicated by `(object, object_epoch, seq, replica)` before they
    /// count toward the write quorum, so duplicated or re-sent acks cannot
    /// inflate durability.
    CheckpointAck {
        object: ObjectId,
        object_epoch: u64,
        seq: u64,
        replica: NodeId,
    },
    /// Stop the worker loop.
    Shutdown,
    /// Fault injection: the worker "crashes" — it stashes its objects for a
    /// later restart and exits without draining its queue.
    Crash,
}

impl std::fmt::Debug for Message {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Message::Create { object, .. } => write!(f, "Create({object})"),
            Message::Invoke { object, method, .. } => write!(f, "Invoke({object}.{method})"),
            Message::MoveRequest { object, to, .. } => write!(f, "MoveRequest({object} → {to})"),
            Message::Install { object, .. } => write!(f, "Install({object})"),
            Message::Surrender { object, to } => write!(f, "Surrender({object} → {to})"),
            Message::EndRequest { object, block, .. } => write!(f, "End({object}, {block})"),
            Message::CheckpointPut { object, .. } => write!(f, "CheckpointPut({object})"),
            Message::CheckpointAck {
                object,
                object_epoch,
                seq,
                replica,
            } => write!(
                f,
                "CheckpointAck({object} e{object_epoch}.{seq} from {replica})"
            ),
            Message::Shutdown => write!(f, "Shutdown"),
            Message::Crash => write!(f, "Crash"),
        }
    }
}

/// Forwarding budget for messages chasing a migrating object.
pub(crate) const MAX_HOPS: u8 = 16;

/// What actually travels on the channels: a message plus the trace id its
/// `Send` event carried (0 when tracing is off or the message is a control
/// sentinel — the receiver then emits no `Recv`), stamped with the sender's
/// identity and incarnation epoch for fencing.
pub(crate) struct Envelope {
    pub(crate) trace_id: u64,
    /// Raw id of the sending node, or [`crate::fault::CLIENT`] for the
    /// client facade (which is never fenced).
    pub(crate) from: u32,
    /// The sender's incarnation at send time. Receivers that have seen a
    /// newer incarnation of `from` drop the message (zombie fencing); 0 when
    /// no detector is configured.
    pub(crate) epoch: u64,
    pub(crate) msg: Message,
}

impl Envelope {
    /// Wraps a message that is not part of the traced protocol (shutdown and
    /// crash sentinels, and every message when tracing is disabled). Control
    /// sentinels originate at the client facade and are never fenced.
    pub(crate) fn untraced(msg: Message) -> Self {
        Envelope {
            trace_id: 0,
            from: crate::fault::CLIENT,
            epoch: 0,
            msg,
        }
    }
}
