//! # oml-runtime — a real enactment of the paper's run-time support
//!
//! Where `oml-sim` *models* the distributed object system to measure policy
//! behaviour, this crate *implements* it: every node is a thread, every
//! message is a real crossbeam channel send, objects are linearized to bytes
//! and shipped when they migrate, and the same
//! [`oml_core::policy::MovePolicy`] objects interpret `move()`-requests at
//! the callee's node (§3.1, Fig. 3).
//!
//! It demonstrates that transient placement, alliances and A-transitive
//! attachment are implementable as ordinary run-time support — "without
//! changing the operations of objects" (§3) — not just as simulation
//! abstractions.
//!
//! * [`Cluster`] — the multi-node world: create objects, invoke them,
//!   migrate them, attach them, form alliances.
//! * [`MobileObject`] — the trait user objects implement: `invoke` (the
//!   method dispatch a compiler would generate), `linearize` (state
//!   serialization) plus a registered delinearizer per type tag.
//! * [`MoveGuard`] — an RAII move-block: constructed by
//!   [`Cluster::move_block`], its `Drop` issues the `end`-request, exactly
//!   mirroring the `begin … end` block of Fig. 2.
//! * Location management uses the *immediate update* mechanism the paper
//!   cites (\[Dec86\]): a shared directory adjusted at migration time, with
//!   bounded forwarding while an object is in flight.
//!
//! # Example
//!
//! ```
//! use oml_runtime::{Cluster, MobileObject};
//! use oml_core::ids::NodeId;
//! use oml_core::policy::PolicyKind;
//!
//! struct Counter(u64);
//!
//! impl MobileObject for Counter {
//!     fn type_tag(&self) -> &'static str { "counter" }
//!     fn invoke(&mut self, method: &str, _payload: &[u8]) -> Result<Vec<u8>, String> {
//!         match method {
//!             "add" => { self.0 += 1; Ok(self.0.to_le_bytes().to_vec()) }
//!             other => Err(format!("no such method: {other}")),
//!         }
//!     }
//!     fn linearize(&self) -> Vec<u8> { self.0.to_le_bytes().to_vec() }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cluster = Cluster::builder()
//!     .nodes(2)
//!     .policy(PolicyKind::TransientPlacement)
//!     .build();
//! cluster.register_type("counter", |bytes| {
//!     let mut b = [0u8; 8];
//!     b.copy_from_slice(bytes);
//!     Box::new(Counter(u64::from_le_bytes(b)))
//! });
//!
//! let obj = cluster.create(NodeId::new(0), Box::new(Counter(0)))?;
//! cluster.invoke(obj, "add", &[])?;
//!
//! // a move-block: migrate, work locally, release on drop
//! {
//!     let guard = cluster.move_block(obj, NodeId::new(1))?;
//!     assert!(guard.granted());
//!     cluster.invoke(obj, "add", &[])?;
//! } // end-request issued here
//!
//! assert_eq!(cluster.location_of(obj), Some(NodeId::new(1)));
//! cluster.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::pedantic)]
// ids and payload sizes cast between widths at the wire boundary; the rest
// are deliberate style choices of this crate's API surface
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::elidable_lifetime_names,
    clippy::items_after_statements,
    clippy::map_unwrap_or,
    clippy::missing_errors_doc,
    clippy::missing_fields_in_debug,
    clippy::missing_panics_doc,
    clippy::must_use_candidate,
    clippy::needless_pass_by_value,
    clippy::redundant_closure_for_method_calls,
    clippy::single_match_else,
    clippy::too_many_lines,
    clippy::unnecessary_semicolon,
    clippy::wildcard_imports
)]

mod cluster;
mod fault;
mod message;
mod node;
mod proxy;
mod recovery;
mod trace;

pub mod error;
pub mod object;
pub mod schedule;
pub mod store;
pub mod transport;
pub mod wire;

pub use cluster::{CheckpointHealth, Cluster, ClusterBuilder, ClusterStats, MoveGuard};
pub use error::RuntimeError;
pub use fault::{FailurePattern, FaultPlan};
pub use object::{Delinearizer, MobileObject};
pub use proxy::ObjRef;
pub use recovery::{DetectorConfig, NodeHealth};
pub use schedule::{FreeRun, ScheduleSource, SendAction};
pub use store::{
    CheckpointStore, Durability, FaultFs, FsyncPolicy, MemStore, RecoveryReport, StoreError,
    StoredCheckpoint, WalStats, WalStore, WalStoreConfig,
};
pub use trace::KNOWN_LOCK_ORDER;
pub use transport::multiproc::{
    run_worker, MultiProcCluster, MultiProcConfig, MultiProcStats, ProcHealth, WorkerExit,
    WorkerOptions,
};
pub use transport::netio::TransportAddr;
pub use transport::socket::{SocketConfig, SocketPeer, SocketServer};
pub use transport::{LinkHealth, Transport, TransportError, TransportEvent};
