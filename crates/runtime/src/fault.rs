//! Deterministic, seeded fault injection for the threads-and-channels
//! runtime.
//!
//! A [`FaultPlan`] describes which message faults to inject — drops, delays,
//! duplicates, node-pair partitions, plus a dedicated knob for losing
//! `end`-requests (the paper's placement locks are released by end-requests,
//! so losing them is *the* interesting failure for lease recovery). The
//! plan is installed through `ClusterBuilder::faults`.
//!
//! # Fault model
//!
//! * **Control messages** — invocations, move-requests and end-requests —
//!   are subject to every configured fault, whichever link they travel
//!   (client → node or node → node for forwarded traffic).
//! * **State transfer** — `Create`, `Install` and `Surrender` — is always
//!   reliable, modelling a retransmitting bulk channel: dropping a
//!   linearized object would not be a *message* fault but data loss, which
//!   is out of scope (the paper assumes objects survive migration).
//! * **Partitions** sever node pairs for control traffic in both
//!   directions; the client is not a partitionable endpoint.
//!
//! # Determinism
//!
//! Every decision is a pure hash of `(seed, from, to, link sequence
//! number)`: link counters are incremented under a lock at send time, so a
//! sequential caller produces an identical fault schedule — and an identical
//! [`FaultInjector::trace`] — on every run with the same seed.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

use oml_core::ids::NodeId;

/// The virtual "node id" used for messages originating at the client facade
/// (which is not a cluster node but still owns lossy links to every node).
pub(crate) const CLIENT: u32 = u32::MAX;

/// A seeded description of the faults to inject into a cluster.
///
/// The default plan (any seed, all probabilities zero) injects nothing.
///
/// # Example
///
/// ```
/// use oml_runtime::FaultPlan;
///
/// let plan = FaultPlan::seeded(42)
///     .drop_probability(0.05)
///     .delay_probability(0.2, 10)
///     .duplicate_probability(0.05)
///     .drop_end_requests(0.25);
/// assert_eq!(plan.seed(), 42);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop: f64,
    duplicate: f64,
    delay: f64,
    max_delay_ms: u64,
    drop_end_requests: f64,
    checkpoint_drop: f64,
    checkpoint_duplicate: f64,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_delay_ms: 0,
            drop_end_requests: 0.0,
            checkpoint_drop: 0.0,
            checkpoint_duplicate: 0.0,
        }
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn check(p: f64, what: &str) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "{what} probability {p} outside [0, 1]"
        );
        p
    }

    /// Probability that a control message is silently dropped.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1]`.
    #[must_use]
    pub fn drop_probability(mut self, p: f64) -> Self {
        self.drop = Self::check(p, "drop");
        self
    }

    /// Probability that a control message is delivered twice.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1]`.
    #[must_use]
    pub fn duplicate_probability(mut self, p: f64) -> Self {
        self.duplicate = Self::check(p, "duplicate");
        self
    }

    /// Probability that a control message is delayed, and the maximum delay
    /// in milliseconds (the actual delay is hash-uniform in
    /// `1..=max_delay_ms`).
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1]`, or if `p > 0` with a zero maximum.
    #[must_use]
    pub fn delay_probability(mut self, p: f64, max_delay_ms: u64) -> Self {
        self.delay = Self::check(p, "delay");
        assert!(
            p == 0.0 || max_delay_ms > 0,
            "delaying with a zero maximum delay is a no-op"
        );
        self.max_delay_ms = max_delay_ms;
        self
    }

    /// Probability that an `end`-request (specifically) is dropped —
    /// overriding the generic drop probability for end-requests. This is the
    /// knob that exercises lease recovery: a lost end-request leaves its
    /// placement lock held until the lease expires.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1]`.
    #[must_use]
    pub fn drop_end_requests(mut self, p: f64) -> Self {
        self.drop_end_requests = Self::check(p, "end-request drop");
        self
    }

    /// Probabilities that replica traffic (`CheckpointPut` and
    /// `CheckpointAck`) is dropped or duplicated. Checkpoint faults use their
    /// own decision stream so enabling them never perturbs the control-
    /// message fault schedule of an existing seed, and they are never
    /// delayed (a late refresh is just a fresh-enough refresh).
    ///
    /// # Panics
    ///
    /// Panics unless both probabilities are in `[0, 1]`.
    #[must_use]
    pub fn checkpoint_faults(mut self, drop_p: f64, duplicate_p: f64) -> Self {
        self.checkpoint_drop = Self::check(drop_p, "checkpoint drop");
        self.checkpoint_duplicate = Self::check(duplicate_p, "checkpoint duplicate");
        self
    }

    fn is_noop(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.delay == 0.0
            && self.drop_end_requests == 0.0
    }
}

/// Which nodes a correlated-failure schedule kills in one sweep — the
/// durability experiment's independent variable alongside the replication
/// factor `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePattern {
    /// Crash only the object's current host.
    SingleNode,
    /// Crash the object's host and its home node in the same detector sweep
    /// — the double-crash that defeats a single home-node checkpoint.
    HostAndHome,
    /// Crash every member of the object's replica set except one, plus the
    /// host if it lies outside the set — the worst correlated loss `k = f+1`
    /// is designed to survive.
    ReplicaSetMinusOne,
}

impl FailurePattern {
    /// Short label for tables and CSV output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FailurePattern::SingleNode => "single-node",
            FailurePattern::HostAndHome => "host+home",
            FailurePattern::ReplicaSetMinusOne => "replica-set-minus-one",
        }
    }
}

impl std::fmt::Display for FailurePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What the injector decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Delivery {
    /// Deliver `copies` copies (1 normally, 2 when duplicated), after
    /// `delay_ms` milliseconds (0 = immediately).
    Deliver { copies: u8, delay_ms: u64 },
    /// The message is lost.
    Drop,
}

/// The per-cluster fault decision engine. All state is internally
/// synchronized; workers and the client facade share one injector.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    /// Per-(from, to) link sequence counters.
    seqs: Mutex<HashMap<(u32, u32), u64>>,
    /// Separate link counters for checkpoint traffic — refresh fan-out is
    /// timing-dependent (lease sweeps), so it must not consume control-
    /// message sequence numbers or the control fault schedule would stop
    /// being reproducible per seed.
    ckpt_seqs: Mutex<HashMap<(u32, u32), u64>>,
    /// Severed node pairs, stored normalized (low, high).
    partitions: Mutex<HashSet<(u32, u32)>>,
    /// Human-readable fault events, in decision order.
    trace: Mutex<Vec<String>>,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            seqs: Mutex::new(HashMap::new()),
            ckpt_seqs: Mutex::new(HashMap::new()),
            partitions: Mutex::new(HashSet::new()),
            trace: Mutex::new(Vec::new()),
        }
    }

    fn normalize(a: NodeId, b: NodeId) -> (u32, u32) {
        let (a, b) = (a.as_u32(), b.as_u32());
        (a.min(b), a.max(b))
    }

    pub(crate) fn partition(&self, a: NodeId, b: NodeId) {
        self.partitions.lock().insert(Self::normalize(a, b));
        self.note(format!("partition {a}<->{b}"));
    }

    pub(crate) fn heal(&self, a: NodeId, b: NodeId) {
        if self.partitions.lock().remove(&Self::normalize(a, b)) {
            self.note(format!("heal {a}<->{b}"));
        }
    }

    pub(crate) fn heal_all(&self) {
        let mut parts = self.partitions.lock();
        if !parts.is_empty() {
            parts.clear();
            self.note("heal all".to_owned());
        }
    }

    pub(crate) fn is_partitioned(&self, from: u32, to: u32) -> bool {
        if from == CLIENT {
            return false;
        }
        self.partitions
            .lock()
            .contains(&Self::normalize(NodeId::new(from), NodeId::new(to)))
    }

    /// Whether `node` is an endpoint of any active partition — the failure
    /// detector's view: a partitioned node is *suspected* (its peers stop
    /// hearing from it) but never declared dead (it is still running).
    pub(crate) fn is_isolated(&self, node: u32) -> bool {
        self.partitions
            .lock()
            .iter()
            .any(|&(a, b)| a == node || b == node)
    }

    /// Appends a free-form line to the fault trace (crashes, restarts,
    /// partitions — scripted events that are part of the reproducible
    /// schedule).
    pub(crate) fn note(&self, line: String) {
        self.trace.lock().push(line);
    }

    pub(crate) fn trace(&self) -> Vec<String> {
        self.trace.lock().clone()
    }

    /// Decides the fate of one control message on the `from → to` link.
    /// `desc` is the message's debug rendering, recorded with any fault.
    pub(crate) fn decide(&self, from: u32, to: u32, is_end: bool, desc: &str) -> Delivery {
        let clean = Delivery::Deliver {
            copies: 1,
            delay_ms: 0,
        };
        if self.plan.is_noop() && self.partitions.lock().is_empty() {
            return clean;
        }
        let seq = {
            let mut seqs = self.seqs.lock();
            let c = seqs.entry((from, to)).or_insert(0);
            let seq = *c;
            *c += 1;
            seq
        };
        let link = |f: u32| {
            if f == CLIENT {
                "client".to_owned()
            } else {
                format!("n{f}")
            }
        };
        if self.is_partitioned(from, to) {
            self.note(format!(
                "drop(partition) {}->n{to} #{seq} {desc}",
                link(from)
            ));
            return Delivery::Drop;
        }
        let p_drop = if is_end {
            self.plan.drop_end_requests
        } else {
            self.plan.drop
        };
        if self.chance(from, to, seq, 1, p_drop) {
            self.note(format!("drop {}->n{to} #{seq} {desc}", link(from)));
            return Delivery::Drop;
        }
        let copies = if self.chance(from, to, seq, 2, self.plan.duplicate) {
            self.note(format!("duplicate {}->n{to} #{seq} {desc}", link(from)));
            2
        } else {
            1
        };
        let delay_ms = if self.chance(from, to, seq, 3, self.plan.delay) {
            let d = 1 + self.hash(from, to, seq, 4) % self.plan.max_delay_ms.max(1);
            self.note(format!("delay({d}ms) {}->n{to} #{seq} {desc}", link(from)));
            d
        } else {
            0
        };
        Delivery::Deliver { copies, delay_ms }
    }

    /// Decides the fate of one checkpoint message (`CheckpointPut` or
    /// `CheckpointAck`) on the `from → to` link. Unlike [`Self::decide`]
    /// this is *silent* — checkpoint traffic is driven by lease-sweep timing,
    /// so recording it would make the fault trace (which reproducibility
    /// tests compare bit-for-bit) timing-dependent. Partitions still apply;
    /// drops and duplicates come from the dedicated checkpoint knobs.
    pub(crate) fn decide_checkpoint(&self, from: u32, to: u32) -> Delivery {
        if self.is_partitioned(from, to) {
            return Delivery::Drop;
        }
        if self.plan.checkpoint_drop == 0.0 && self.plan.checkpoint_duplicate == 0.0 {
            return Delivery::Deliver {
                copies: 1,
                delay_ms: 0,
            };
        }
        let seq = {
            let mut seqs = self.ckpt_seqs.lock();
            let c = seqs.entry((from, to)).or_insert(0);
            let seq = *c;
            *c += 1;
            seq
        };
        if self.chance(from, to, seq, 11, self.plan.checkpoint_drop) {
            return Delivery::Drop;
        }
        let copies = if self.chance(from, to, seq, 12, self.plan.checkpoint_duplicate) {
            2
        } else {
            1
        };
        Delivery::Deliver {
            copies,
            delay_ms: 0,
        }
    }

    fn hash(&self, from: u32, to: u32, seq: u64, salt: u64) -> u64 {
        // SplitMix64 over the combined identity: decisions depend only on
        // the seed and the message's link coordinates, never on wall-clock
        // interleaving.
        let mut x = self
            .plan
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(from) << 32 | u64::from(to))
            .wrapping_add(seq.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(salt.wrapping_mul(0x94d0_49bb_1331_11eb));
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x
    }

    fn chance(&self, from: u32, to: u32, seq: u64, salt: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let unit = (self.hash(from, to, seq, salt) >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_transparent() {
        let inj = FaultInjector::new(FaultPlan::seeded(7));
        for i in 0..100 {
            assert_eq!(
                inj.decide(CLIENT, 0, false, &format!("m{i}")),
                Delivery::Deliver {
                    copies: 1,
                    delay_ms: 0
                }
            );
        }
        assert!(inj.trace().is_empty());
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_seq() {
        let run = |seed: u64| {
            let inj = FaultInjector::new(
                FaultPlan::seeded(seed)
                    .drop_probability(0.2)
                    .duplicate_probability(0.2)
                    .delay_probability(0.2, 10),
            );
            (0..200)
                .map(|i| inj.decide(0, 1, false, &format!("m{i}")))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn drop_rate_tracks_the_probability() {
        let inj = FaultInjector::new(FaultPlan::seeded(11).drop_probability(0.3));
        let n = 10_000;
        let dropped = (0..n)
            .filter(|_| inj.decide(0, 1, false, "m") == Delivery::Drop)
            .count();
        let rate = dropped as f64 / f64::from(n);
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn end_requests_use_their_own_drop_probability() {
        let inj = FaultInjector::new(FaultPlan::seeded(5).drop_end_requests(1.0));
        // non-end messages sail through…
        assert_ne!(inj.decide(CLIENT, 0, false, "Invoke"), Delivery::Drop);
        // …end-requests always drop
        assert_eq!(inj.decide(CLIENT, 0, true, "End"), Delivery::Drop);
    }

    #[test]
    fn partitions_cut_both_directions_and_heal() {
        let inj = FaultInjector::new(FaultPlan::seeded(0));
        inj.partition(NodeId::new(0), NodeId::new(1));
        assert_eq!(inj.decide(0, 1, false, "m"), Delivery::Drop);
        assert_eq!(inj.decide(1, 0, false, "m"), Delivery::Drop);
        // other links unaffected; the client cannot be partitioned
        assert_ne!(inj.decide(0, 2, false, "m"), Delivery::Drop);
        assert_ne!(inj.decide(CLIENT, 1, false, "m"), Delivery::Drop);
        inj.heal(NodeId::new(1), NodeId::new(0)); // order-insensitive
        assert_ne!(inj.decide(0, 1, false, "m"), Delivery::Drop);
    }

    #[test]
    fn isolation_tracks_partition_membership() {
        let inj = FaultInjector::new(FaultPlan::seeded(0));
        assert!(!inj.is_isolated(0));
        inj.partition(NodeId::new(0), NodeId::new(2));
        assert!(inj.is_isolated(0));
        assert!(inj.is_isolated(2));
        assert!(!inj.is_isolated(1));
        inj.heal_all();
        assert!(!inj.is_isolated(0));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn probabilities_are_validated() {
        let _ = FaultPlan::seeded(0).drop_probability(1.5);
    }

    #[test]
    fn checkpoint_faults_are_silent_and_independent() {
        let inj = FaultInjector::new(FaultPlan::seeded(9).checkpoint_faults(0.5, 0.0));
        let n = 2_000;
        let dropped = (0..n)
            .filter(|_| inj.decide_checkpoint(0, 1) == Delivery::Drop)
            .count();
        let rate = dropped as f64 / f64::from(n);
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
        // silent: nothing was recorded in the fault trace
        assert!(inj.trace().is_empty());
        // independent stream: control decisions are untouched by the
        // checkpoint knobs (no control faults configured)
        assert_ne!(inj.decide(0, 1, false, "m"), Delivery::Drop);
    }

    #[test]
    fn checkpoint_traffic_respects_partitions() {
        let inj = FaultInjector::new(FaultPlan::seeded(0));
        inj.partition(NodeId::new(0), NodeId::new(1));
        assert_eq!(inj.decide_checkpoint(0, 1), Delivery::Drop);
        assert_eq!(inj.decide_checkpoint(1, 0), Delivery::Drop);
        assert_ne!(inj.decide_checkpoint(0, 2), Delivery::Drop);
    }

    #[test]
    fn checkpoint_duplication_delivers_two_copies() {
        let inj = FaultInjector::new(FaultPlan::seeded(1).checkpoint_faults(0.0, 1.0));
        assert_eq!(
            inj.decide_checkpoint(0, 1),
            Delivery::Deliver {
                copies: 2,
                delay_ms: 0
            }
        );
    }

    #[test]
    fn failure_pattern_labels_are_distinct() {
        let labels = [
            FailurePattern::SingleNode.label(),
            FailurePattern::HostAndHome.label(),
            FailurePattern::ReplicaSetMinusOne.label(),
        ];
        let set: HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
        assert_eq!(FailurePattern::HostAndHome.to_string(), "host+home");
    }
}
