//! Crash recovery: failure detection, epoch fencing, passive checkpoints
//! and per-node circuit breakers.
//!
//! The paper's "comparing and reinstantiation" policy already sanctions
//! re-creating an object elsewhere when its host is unreachable; this module
//! supplies the machinery that makes doing so safe in the threads-and-
//! channels runtime:
//!
//! * **Failure detector** — node workers heartbeat on every loop tick; a
//!   node that misses `k_missed` consecutive heartbeat intervals is
//!   *suspected*, and *declared dead* only when its worker is also known to
//!   be gone. A partitioned node keeps beating (the detector also consults
//!   the fault injector's partition table) so it is only ever suspected,
//!   never declared dead.
//! * **Incarnation epochs** — every node carries an incarnation number,
//!   bumped when the node is declared dead and again when it rejoins. Every
//!   message is stamped with its sender's incarnation; receivers drop
//!   messages from incarnations older than the latest they know of, so a
//!   zombie worker (or its delayed messages) cannot corrupt state installed
//!   by its successor.
//! * **Replicated checkpoints** — each object keeps `k` linearized passive
//!   copies on a deterministic, home-preferred, rendezvous-hashed replica
//!   set, refreshed on create, migration install, `end()`-requests and lease
//!   expiry. Refreshes propagate as `CheckpointPut` messages and count
//!   `CheckpointAck`s (deduplicated per replica) against a majority write
//!   quorum. When a node is declared dead its stranded objects are
//!   reinstantiated from the *freshest surviving replica* — ordered by
//!   `(object epoch, refresh sequence)` — under a bumped object epoch;
//!   installs carrying an older object epoch are fenced. A background
//!   anti-entropy repair sweep re-replicates under-replicated objects and
//!   heals replicas diverged by dropped refresh traffic.
//! * **Circuit breaker** — one per node: `Open` on suspicion or death
//!   (calls fail fast with [`crate::RuntimeError::NodeDown`]), `HalfOpen`
//!   when heartbeats resume, at which point exactly one probe call is
//!   admitted; its success closes the breaker, its failure reopens it.
//!
//! The whole subsystem is inert unless [`crate::ClusterBuilder::failure_detector`]
//! is called: without a detector the runtime behaves exactly as before.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

use oml_core::ids::{NodeId, ObjectId};

use crate::store::CheckpointStore;
use crate::trace::{OrderedMutex, OrderedRwLock};

/// Failure-detector tuning: how often nodes are expected to beat, and how
/// many missed beats arouse suspicion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Expected heartbeat interval in milliseconds.
    pub heartbeat_ms: u64,
    /// Consecutive missed beats before a node is suspected (and, if its
    /// worker is gone, declared dead).
    pub k_missed: u32,
}

impl DetectorConfig {
    /// The silence window after which a node is suspected:
    /// `k_missed * heartbeat_ms`.
    #[must_use]
    pub fn suspicion_after_ms(&self) -> u64 {
        self.heartbeat_ms.saturating_mul(u64::from(self.k_missed))
    }
}

/// The failure detector's current verdict on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Beating normally.
    Up,
    /// Missed beats or partitioned away — calls fail fast, but the node may
    /// come back (suspicion is revocable).
    Suspected,
    /// Declared dead: its incarnation is fenced and its objects have been
    /// reinstantiated. Only [`crate::Cluster::restart_node`] revives it.
    Dead,
}

const HEALTH_UP: u8 = 0;
const HEALTH_SUSPECTED: u8 = 1;
const HEALTH_DEAD: u8 = 2;

const BREAKER_CLOSED: u8 = 0;
const BREAKER_OPEN: u8 = 1;
const BREAKER_HALF_OPEN: u8 = 2;
const BREAKER_PROBING: u8 = 3;

/// What the circuit breaker says about admitting one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Breaker closed: proceed normally.
    Proceed,
    /// Breaker was half-open and this call won the probe slot: proceed, and
    /// report the outcome via [`RecoveryState::settle`].
    Probe,
    /// Breaker open (or another probe is in flight): fail fast.
    FailFast,
}

/// One replica's copy of an object's passive state: since the store
/// subsystem landed this is [`crate::store::StoredCheckpoint`] — the same
/// freshness coordinates, now shared with the on-disk WAL stores.
pub(crate) use crate::store::StoredCheckpoint as ReplicaCheckpoint;

/// An in-flight quorum-acknowledged refresh: which write we are waiting on
/// and which replicas have acked it so far.
pub(crate) struct PendingRefresh {
    pub(crate) object_epoch: u64,
    pub(crate) seq: u64,
    /// Acks needed before the write counts as quorum-durable.
    pub(crate) quorum: usize,
    /// Raw node ids that acked `(object_epoch, seq)` — a set, so duplicated
    /// or re-sent acks from the same replica count once.
    pub(crate) acked: std::collections::HashSet<u32>,
}

/// Per-object replication bookkeeping: placement anchor, refresh sequencing
/// and quorum progress.
pub(crate) struct ReplicationInfo {
    /// The object's home node (where it was created) — the preferred first
    /// replica and reinstantiation site.
    pub(crate) home: NodeId,
    /// Last refresh sequence issued. Monotone for the object's lifetime —
    /// never reset on epoch bumps, so `(epoch, seq)` never repeats.
    pub(crate) seq: u64,
    /// The refresh currently collecting acks, if any.
    pub(crate) pending: Option<PendingRefresh>,
    /// Freshest `(object_epoch, seq)` known to have reached a write quorum.
    pub(crate) last_quorum: Option<(u64, u64)>,
    /// Lease-clock timestamp of the last issued refresh (or the initial
    /// checkpoint), for the oldest-refresh-age health metric.
    pub(crate) last_refresh_at_ms: u64,
}

/// All recovery-subsystem state, held in `Shared` when a detector is
/// configured.
pub(crate) struct RecoveryState {
    pub(crate) config: DetectorConfig,
    /// Epoch fencing active? Disabled by [`crate::ClusterBuilder::unfenced`]
    /// (a negative-testing hook: zombies then corrupt state observably).
    pub(crate) fenced: bool,
    /// Replication factor `k = f + 1`: how many nodes hold each object's
    /// passive copy (clamped to the cluster size at placement time).
    pub(crate) replica_k: usize,
    /// Whether the anti-entropy repair sweep re-replicates (negative-testing
    /// hook: [`crate::ClusterBuilder::no_repair`] leaves under-replication
    /// standing for the checker to flag).
    pub(crate) repair: bool,
    /// Negative-testing hook: promote the *stalest* surviving replica at
    /// reinstantiation instead of the freshest, so the checker's
    /// `StaleReplicaPromoted` invariant has something to catch.
    pub(crate) stale_promotion: bool,
    /// Current incarnation per node; starts at 1.
    incarnations: Vec<AtomicU64>,
    /// Whether the node's worker thread is (believed) running. Gates *death*
    /// only — suspicion is pure heartbeat observation.
    alive: Vec<AtomicBool>,
    /// Lease-clock timestamp of each node's last accepted heartbeat.
    last_beat: Vec<AtomicU64>,
    health: Vec<AtomicU8>,
    breakers: Vec<AtomicU8>,
    /// Serializes epoch decisions (declare-dead vs restart vs stash
    /// reclamation). Held only around epoch/stash arithmetic, never across
    /// message sends. Registered with the lock-order analyzer: declare-dead
    /// nests the directory and object-epoch locks under it (see
    /// [`crate::trace::KNOWN_LOCK_ORDER`]).
    pub(crate) epoch_lock: OrderedMutex<()>,
    /// Current epoch per object; bumped at reinstantiation. Absent = 0.
    pub(crate) object_epochs: OrderedRwLock<HashMap<ObjectId, u64>>,
    /// Per-node replica stores: `replica_stores[n]` is node `n`'s local
    /// [`CheckpointStore`] of passive copies — in-memory by default, WAL-
    /// backed via [`crate::ClusterBuilder::durable_store`]. One lock over
    /// all stores — cross-store scans (promotion, repair planning) then see
    /// a consistent cut.
    pub(crate) replica_stores: OrderedMutex<Vec<Box<dyn CheckpointStore>>>,
    /// Per-object replication bookkeeping (home, sequencing, quorum acks).
    pub(crate) replication: OrderedMutex<HashMap<ObjectId, ReplicationInfo>>,
}

impl RecoveryState {
    pub(crate) fn new(
        nodes: usize,
        config: DetectorConfig,
        fenced: bool,
        replica_k: usize,
        repair: bool,
        stale_promotion: bool,
        stores: Vec<Box<dyn CheckpointStore>>,
    ) -> Self {
        assert_eq!(stores.len(), nodes, "one checkpoint store per node");
        // epoch monotonicity across restarts: the recovered floors seed the
        // live epoch table, so a reinstantiation after a cold restart can
        // never hand out an epoch a previous incarnation already used
        let mut epochs: HashMap<ObjectId, u64> = HashMap::new();
        for store in &stores {
            for (object, floor) in store.epoch_floors() {
                let e = epochs.entry(object).or_insert(0);
                *e = (*e).max(floor);
            }
        }
        RecoveryState {
            config,
            fenced,
            replica_k,
            repair,
            stale_promotion,
            incarnations: (0..nodes).map(|_| AtomicU64::new(1)).collect(),
            alive: (0..nodes).map(|_| AtomicBool::new(true)).collect(),
            last_beat: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            health: (0..nodes).map(|_| AtomicU8::new(HEALTH_UP)).collect(),
            breakers: (0..nodes).map(|_| AtomicU8::new(BREAKER_CLOSED)).collect(),
            epoch_lock: OrderedMutex::new("shared.epoch_lock", ()),
            object_epochs: OrderedRwLock::new("shared.object_epochs", epochs),
            replica_stores: OrderedMutex::new("shared.replica_stores", stores),
            replication: OrderedMutex::new("shared.replication", HashMap::new()),
        }
    }

    /// Can `node` currently hold (or serve) a replica? Crashed and declared-
    /// dead nodes cannot; a merely *suspected* node still can — its store is
    /// intact and refresh traffic to it may well arrive.
    pub(crate) fn replica_available(&self, node: usize) -> bool {
        self.is_alive(node) && self.health(node) != NodeHealth::Dead
    }

    pub(crate) fn incarnation(&self, node: usize) -> u64 {
        self.incarnations[node].load(Ordering::Acquire)
    }

    /// Bumps and returns the node's new incarnation (fencing the old one).
    pub(crate) fn bump_incarnation(&self, node: usize) -> u64 {
        self.incarnations[node].fetch_add(1, Ordering::AcqRel) + 1
    }

    pub(crate) fn is_alive(&self, node: usize) -> bool {
        self.alive[node].load(Ordering::Acquire)
    }

    pub(crate) fn mark_crashed(&self, node: usize) {
        self.alive[node].store(false, Ordering::Release);
    }

    pub(crate) fn mark_alive(&self, node: usize, now_ms: u64) {
        self.alive[node].store(true, Ordering::Release);
        self.last_beat[node].store(now_ms, Ordering::Release);
    }

    /// Records a heartbeat from incarnation `epoch` of `node`. Beats from
    /// fenced incarnations are ignored — a zombie cannot revive its node's
    /// health.
    pub(crate) fn beat(&self, node: usize, epoch: u64, now_ms: u64) {
        if epoch < self.incarnation(node) {
            return;
        }
        self.last_beat[node].fetch_max(now_ms, Ordering::AcqRel);
    }

    pub(crate) fn last_beat(&self, node: usize) -> u64 {
        self.last_beat[node].load(Ordering::Acquire)
    }

    /// Refreshes every live node's heartbeat to `now_ms` — called when the
    /// manual clock jumps, modelling the beats the workers would have
    /// produced continuously across the (instantaneous) jump.
    pub(crate) fn refresh_alive_beats(&self, now_ms: u64) {
        for (i, beat) in self.last_beat.iter().enumerate() {
            if self.alive[i].load(Ordering::Acquire) {
                beat.fetch_max(now_ms, Ordering::AcqRel);
            }
        }
    }

    pub(crate) fn health(&self, node: usize) -> NodeHealth {
        match self.health[node].load(Ordering::Acquire) {
            HEALTH_SUSPECTED => NodeHealth::Suspected,
            HEALTH_DEAD => NodeHealth::Dead,
            _ => NodeHealth::Up,
        }
    }

    pub(crate) fn set_health(&self, node: usize, health: NodeHealth) {
        let raw = match health {
            NodeHealth::Up => HEALTH_UP,
            NodeHealth::Suspected => HEALTH_SUSPECTED,
            NodeHealth::Dead => HEALTH_DEAD,
        };
        self.health[node].store(raw, Ordering::Release);
    }

    /// Opens the breaker; returns whether it actually transitioned (for the
    /// `breaker_opens` counter).
    pub(crate) fn open_breaker(&self, node: usize) -> bool {
        self.breakers[node].swap(BREAKER_OPEN, Ordering::AcqRel) != BREAKER_OPEN
    }

    /// Moves an open breaker to half-open (heartbeats resumed — the next
    /// call is admitted as a probe).
    pub(crate) fn half_open_breaker(&self, node: usize) {
        let _ = self.breakers[node].compare_exchange(
            BREAKER_OPEN,
            BREAKER_HALF_OPEN,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// The breaker's verdict for one call to `node`.
    pub(crate) fn admit(&self, node: usize) -> Admission {
        match self.breakers[node].load(Ordering::Acquire) {
            BREAKER_CLOSED => Admission::Proceed,
            BREAKER_HALF_OPEN => {
                // exactly one caller wins the probe slot
                if self.breakers[node]
                    .compare_exchange(
                        BREAKER_HALF_OPEN,
                        BREAKER_PROBING,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    Admission::Probe
                } else {
                    Admission::FailFast
                }
            }
            _ => Admission::FailFast,
        }
    }

    /// Records a call's outcome: a successful probe closes the breaker, a
    /// failed one reopens it. Returns whether the breaker (re)opened.
    pub(crate) fn settle(&self, node: usize, success: bool) -> bool {
        if success {
            let _ = self.breakers[node].compare_exchange(
                BREAKER_PROBING,
                BREAKER_CLOSED,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
            false
        } else {
            self.breakers[node]
                .compare_exchange(
                    BREAKER_PROBING,
                    BREAKER_OPEN,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
        }
    }
}

/// The deterministic replica-placement order for `object`: its home node
/// first, then every other node ranked by rendezvous (highest-random-weight)
/// hashing of `(object, node)`. The first `k` *available* entries form the
/// replica set — placement needs no coordination, every node computes the
/// same answer, and a node's death shifts only the objects that mapped onto
/// it.
pub(crate) fn preference_order(object: ObjectId, home: NodeId, nodes: usize) -> Vec<NodeId> {
    let mut rest: Vec<u32> = (0..nodes as u32).filter(|&n| n != home.as_u32()).collect();
    // ties (never expected from a 64-bit hash) break toward the lower id
    rest.sort_by_key(|&n| (std::cmp::Reverse(rendezvous_weight(object, n)), n));
    let mut order = Vec::with_capacity(nodes);
    order.push(home);
    order.extend(rest.into_iter().map(NodeId::new));
    order
}

/// SplitMix64 over the `(object, node)` pair — the rendezvous weight.
fn rendezvous_weight(object: ObjectId, node: u32) -> u64 {
    let mut z =
        (u64::from(object.as_u32()) << 32 | u64::from(node)).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(nodes: usize) -> RecoveryState {
        RecoveryState::new(
            nodes,
            DetectorConfig {
                heartbeat_ms: 10,
                k_missed: 2,
            },
            true,
            2,
            true,
            false,
            (0..nodes)
                .map(|_| Box::new(crate::store::MemStore::new()) as Box<dyn CheckpointStore>)
                .collect(),
        )
    }

    #[test]
    fn suspicion_window_is_k_times_heartbeat() {
        let cfg = DetectorConfig {
            heartbeat_ms: 50,
            k_missed: 3,
        };
        assert_eq!(cfg.suspicion_after_ms(), 150);
    }

    #[test]
    fn stale_beats_are_ignored() {
        let r = state(2);
        r.beat(0, 1, 100);
        assert_eq!(r.last_beat(0), 100);
        r.bump_incarnation(0);
        r.beat(0, 1, 200); // zombie epoch 1 < incarnation 2
        assert_eq!(r.last_beat(0), 100);
        r.beat(0, 2, 200);
        assert_eq!(r.last_beat(0), 200);
    }

    #[test]
    fn breaker_admits_exactly_one_probe() {
        let r = state(1);
        assert_eq!(r.admit(0), Admission::Proceed);
        assert!(r.open_breaker(0));
        assert!(!r.open_breaker(0)); // already open
        assert_eq!(r.admit(0), Admission::FailFast);
        r.half_open_breaker(0);
        assert_eq!(r.admit(0), Admission::Probe);
        assert_eq!(r.admit(0), Admission::FailFast); // probe in flight
        assert!(!r.settle(0, true)); // probe succeeded: closed
        assert_eq!(r.admit(0), Admission::Proceed);
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let r = state(1);
        r.open_breaker(0);
        r.half_open_breaker(0);
        assert_eq!(r.admit(0), Admission::Probe);
        assert!(r.settle(0, false)); // reopened
        assert_eq!(r.admit(0), Admission::FailFast);
    }

    #[test]
    fn preference_order_is_home_first_and_a_permutation() {
        for obj in 0..50u32 {
            let order = preference_order(ObjectId::new(obj), NodeId::new(2), 5);
            assert_eq!(order[0], NodeId::new(2));
            let mut ids: Vec<u32> = order.iter().map(|n| n.as_u32()).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn preference_order_is_deterministic_and_spreads_objects() {
        let a = preference_order(ObjectId::new(7), NodeId::new(0), 6);
        let b = preference_order(ObjectId::new(7), NodeId::new(0), 6);
        assert_eq!(a, b);
        // different objects with the same home should not all agree on the
        // second replica (rendezvous hashing spreads the load)
        let seconds: std::collections::HashSet<u32> = (0..32u32)
            .map(|o| preference_order(ObjectId::new(o), NodeId::new(0), 6)[1].as_u32())
            .collect();
        assert!(
            seconds.len() > 1,
            "all objects chose the same second replica"
        );
    }

    #[test]
    fn replica_versions_order_lexicographically() {
        let older = ReplicaCheckpoint {
            type_tag: "t".into(),
            state: bytes::Bytes::new(),
            object_epoch: 1,
            seq: 9,
        };
        let newer = ReplicaCheckpoint {
            type_tag: "t".into(),
            state: bytes::Bytes::new(),
            object_epoch: 2,
            seq: 0,
        };
        assert!(newer.version() > older.version());
    }

    #[test]
    fn recovered_floors_seed_the_epoch_table() {
        let mut store = crate::store::MemStore::new();
        let _ = store.note_epoch(ObjectId::new(3), 7).unwrap();
        let r = RecoveryState::new(
            1,
            DetectorConfig {
                heartbeat_ms: 10,
                k_missed: 2,
            },
            true,
            1,
            true,
            false,
            vec![Box::new(store)],
        );
        assert_eq!(
            r.object_epochs.read().get(&ObjectId::new(3)).copied(),
            Some(7)
        );
    }

    #[test]
    fn replica_availability_tracks_death_and_crash() {
        let r = state(3);
        assert!(r.replica_available(1));
        r.mark_crashed(1);
        assert!(!r.replica_available(1));
        r.mark_alive(1, 0);
        r.set_health(2, NodeHealth::Dead);
        assert!(r.replica_available(1));
        assert!(!r.replica_available(2));
        // suspicion alone does not disqualify a replica
        r.set_health(1, NodeHealth::Suspected);
        assert!(r.replica_available(1));
    }
}
