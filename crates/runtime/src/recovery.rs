//! Crash recovery: failure detection, epoch fencing, passive checkpoints
//! and per-node circuit breakers.
//!
//! The paper's "comparing and reinstantiation" policy already sanctions
//! re-creating an object elsewhere when its host is unreachable; this module
//! supplies the machinery that makes doing so safe in the threads-and-
//! channels runtime:
//!
//! * **Failure detector** — node workers heartbeat on every loop tick; a
//!   node that misses `k_missed` consecutive heartbeat intervals is
//!   *suspected*, and *declared dead* only when its worker is also known to
//!   be gone. A partitioned node keeps beating (the detector also consults
//!   the fault injector's partition table) so it is only ever suspected,
//!   never declared dead.
//! * **Incarnation epochs** — every node carries an incarnation number,
//!   bumped when the node is declared dead and again when it rejoins. Every
//!   message is stamped with its sender's incarnation; receivers drop
//!   messages from incarnations older than the latest they know of, so a
//!   zombie worker (or its delayed messages) cannot corrupt state installed
//!   by its successor.
//! * **Checkpoints** — each object's home keeps a linearized passive copy,
//!   refreshed on create, migration install, `end()`-requests and lease
//!   expiry. When a node is declared dead its stranded objects are
//!   reinstantiated from these checkpoints under a bumped *object epoch*;
//!   installs carrying an older object epoch are fenced.
//! * **Circuit breaker** — one per node: `Open` on suspicion or death
//!   (calls fail fast with [`crate::RuntimeError::NodeDown`]), `HalfOpen`
//!   when heartbeats resume, at which point exactly one probe call is
//!   admitted; its success closes the breaker, its failure reopens it.
//!
//! The whole subsystem is inert unless [`crate::ClusterBuilder::failure_detector`]
//! is called: without a detector the runtime behaves exactly as before.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

use bytes::Bytes;
use oml_core::ids::{NodeId, ObjectId};
use parking_lot::Mutex;

use crate::trace::{OrderedMutex, OrderedRwLock};

/// Failure-detector tuning: how often nodes are expected to beat, and how
/// many missed beats arouse suspicion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Expected heartbeat interval in milliseconds.
    pub heartbeat_ms: u64,
    /// Consecutive missed beats before a node is suspected (and, if its
    /// worker is gone, declared dead).
    pub k_missed: u32,
}

impl DetectorConfig {
    /// The silence window after which a node is suspected:
    /// `k_missed * heartbeat_ms`.
    #[must_use]
    pub fn suspicion_after_ms(&self) -> u64 {
        self.heartbeat_ms.saturating_mul(u64::from(self.k_missed))
    }
}

/// The failure detector's current verdict on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Beating normally.
    Up,
    /// Missed beats or partitioned away — calls fail fast, but the node may
    /// come back (suspicion is revocable).
    Suspected,
    /// Declared dead: its incarnation is fenced and its objects have been
    /// reinstantiated. Only [`crate::Cluster::restart_node`] revives it.
    Dead,
}

const HEALTH_UP: u8 = 0;
const HEALTH_SUSPECTED: u8 = 1;
const HEALTH_DEAD: u8 = 2;

const BREAKER_CLOSED: u8 = 0;
const BREAKER_OPEN: u8 = 1;
const BREAKER_HALF_OPEN: u8 = 2;
const BREAKER_PROBING: u8 = 3;

/// What the circuit breaker says about admitting one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Breaker closed: proceed normally.
    Proceed,
    /// Breaker was half-open and this call won the probe slot: proceed, and
    /// report the outcome via [`RecoveryState::settle`].
    Probe,
    /// Breaker open (or another probe is in flight): fail fast.
    FailFast,
}

/// An object's passive copy, kept for reinstantiation after its host dies.
pub(crate) struct Checkpoint {
    /// The object's home node (where it was created) — the preferred
    /// reinstantiation site.
    pub(crate) home: NodeId,
    pub(crate) type_tag: String,
    pub(crate) state: Bytes,
}

/// All recovery-subsystem state, held in `Shared` when a detector is
/// configured.
pub(crate) struct RecoveryState {
    pub(crate) config: DetectorConfig,
    /// Epoch fencing active? Disabled by [`crate::ClusterBuilder::unfenced`]
    /// (a negative-testing hook: zombies then corrupt state observably).
    pub(crate) fenced: bool,
    /// Current incarnation per node; starts at 1.
    incarnations: Vec<AtomicU64>,
    /// Whether the node's worker thread is (believed) running. Gates *death*
    /// only — suspicion is pure heartbeat observation.
    alive: Vec<AtomicBool>,
    /// Lease-clock timestamp of each node's last accepted heartbeat.
    last_beat: Vec<AtomicU64>,
    health: Vec<AtomicU8>,
    breakers: Vec<AtomicU8>,
    /// Serializes epoch decisions (declare-dead vs restart vs stash
    /// reclamation). Held only around epoch/stash arithmetic, never across
    /// message sends.
    pub(crate) epoch_lock: Mutex<()>,
    /// Current epoch per object; bumped at reinstantiation. Absent = 0.
    pub(crate) object_epochs: OrderedRwLock<HashMap<ObjectId, u64>>,
    pub(crate) checkpoints: OrderedMutex<HashMap<ObjectId, Checkpoint>>,
}

impl RecoveryState {
    pub(crate) fn new(nodes: usize, config: DetectorConfig, fenced: bool) -> Self {
        RecoveryState {
            config,
            fenced,
            incarnations: (0..nodes).map(|_| AtomicU64::new(1)).collect(),
            alive: (0..nodes).map(|_| AtomicBool::new(true)).collect(),
            last_beat: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            health: (0..nodes).map(|_| AtomicU8::new(HEALTH_UP)).collect(),
            breakers: (0..nodes).map(|_| AtomicU8::new(BREAKER_CLOSED)).collect(),
            epoch_lock: Mutex::new(()),
            object_epochs: OrderedRwLock::new("shared.object_epochs", HashMap::new()),
            checkpoints: OrderedMutex::new("shared.checkpoints", HashMap::new()),
        }
    }

    pub(crate) fn incarnation(&self, node: usize) -> u64 {
        self.incarnations[node].load(Ordering::Acquire)
    }

    /// Bumps and returns the node's new incarnation (fencing the old one).
    pub(crate) fn bump_incarnation(&self, node: usize) -> u64 {
        self.incarnations[node].fetch_add(1, Ordering::AcqRel) + 1
    }

    pub(crate) fn is_alive(&self, node: usize) -> bool {
        self.alive[node].load(Ordering::Acquire)
    }

    pub(crate) fn mark_crashed(&self, node: usize) {
        self.alive[node].store(false, Ordering::Release);
    }

    pub(crate) fn mark_alive(&self, node: usize, now_ms: u64) {
        self.alive[node].store(true, Ordering::Release);
        self.last_beat[node].store(now_ms, Ordering::Release);
    }

    /// Records a heartbeat from incarnation `epoch` of `node`. Beats from
    /// fenced incarnations are ignored — a zombie cannot revive its node's
    /// health.
    pub(crate) fn beat(&self, node: usize, epoch: u64, now_ms: u64) {
        if epoch < self.incarnation(node) {
            return;
        }
        self.last_beat[node].fetch_max(now_ms, Ordering::AcqRel);
    }

    pub(crate) fn last_beat(&self, node: usize) -> u64 {
        self.last_beat[node].load(Ordering::Acquire)
    }

    /// Refreshes every live node's heartbeat to `now_ms` — called when the
    /// manual clock jumps, modelling the beats the workers would have
    /// produced continuously across the (instantaneous) jump.
    pub(crate) fn refresh_alive_beats(&self, now_ms: u64) {
        for (i, beat) in self.last_beat.iter().enumerate() {
            if self.alive[i].load(Ordering::Acquire) {
                beat.fetch_max(now_ms, Ordering::AcqRel);
            }
        }
    }

    pub(crate) fn health(&self, node: usize) -> NodeHealth {
        match self.health[node].load(Ordering::Acquire) {
            HEALTH_SUSPECTED => NodeHealth::Suspected,
            HEALTH_DEAD => NodeHealth::Dead,
            _ => NodeHealth::Up,
        }
    }

    pub(crate) fn set_health(&self, node: usize, health: NodeHealth) {
        let raw = match health {
            NodeHealth::Up => HEALTH_UP,
            NodeHealth::Suspected => HEALTH_SUSPECTED,
            NodeHealth::Dead => HEALTH_DEAD,
        };
        self.health[node].store(raw, Ordering::Release);
    }

    /// Opens the breaker; returns whether it actually transitioned (for the
    /// `breaker_opens` counter).
    pub(crate) fn open_breaker(&self, node: usize) -> bool {
        self.breakers[node].swap(BREAKER_OPEN, Ordering::AcqRel) != BREAKER_OPEN
    }

    /// Moves an open breaker to half-open (heartbeats resumed — the next
    /// call is admitted as a probe).
    pub(crate) fn half_open_breaker(&self, node: usize) {
        let _ = self.breakers[node].compare_exchange(
            BREAKER_OPEN,
            BREAKER_HALF_OPEN,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// The breaker's verdict for one call to `node`.
    pub(crate) fn admit(&self, node: usize) -> Admission {
        match self.breakers[node].load(Ordering::Acquire) {
            BREAKER_CLOSED => Admission::Proceed,
            BREAKER_HALF_OPEN => {
                // exactly one caller wins the probe slot
                if self.breakers[node]
                    .compare_exchange(
                        BREAKER_HALF_OPEN,
                        BREAKER_PROBING,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    Admission::Probe
                } else {
                    Admission::FailFast
                }
            }
            _ => Admission::FailFast,
        }
    }

    /// Records a call's outcome: a successful probe closes the breaker, a
    /// failed one reopens it. Returns whether the breaker (re)opened.
    pub(crate) fn settle(&self, node: usize, success: bool) -> bool {
        if success {
            let _ = self.breakers[node].compare_exchange(
                BREAKER_PROBING,
                BREAKER_CLOSED,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
            false
        } else {
            self.breakers[node]
                .compare_exchange(
                    BREAKER_PROBING,
                    BREAKER_OPEN,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suspicion_window_is_k_times_heartbeat() {
        let cfg = DetectorConfig {
            heartbeat_ms: 50,
            k_missed: 3,
        };
        assert_eq!(cfg.suspicion_after_ms(), 150);
    }

    #[test]
    fn stale_beats_are_ignored() {
        let r = RecoveryState::new(
            2,
            DetectorConfig {
                heartbeat_ms: 10,
                k_missed: 2,
            },
            true,
        );
        r.beat(0, 1, 100);
        assert_eq!(r.last_beat(0), 100);
        r.bump_incarnation(0);
        r.beat(0, 1, 200); // zombie epoch 1 < incarnation 2
        assert_eq!(r.last_beat(0), 100);
        r.beat(0, 2, 200);
        assert_eq!(r.last_beat(0), 200);
    }

    #[test]
    fn breaker_admits_exactly_one_probe() {
        let r = RecoveryState::new(
            1,
            DetectorConfig {
                heartbeat_ms: 10,
                k_missed: 2,
            },
            true,
        );
        assert_eq!(r.admit(0), Admission::Proceed);
        assert!(r.open_breaker(0));
        assert!(!r.open_breaker(0)); // already open
        assert_eq!(r.admit(0), Admission::FailFast);
        r.half_open_breaker(0);
        assert_eq!(r.admit(0), Admission::Probe);
        assert_eq!(r.admit(0), Admission::FailFast); // probe in flight
        assert!(!r.settle(0, true)); // probe succeeded: closed
        assert_eq!(r.admit(0), Admission::Proceed);
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let r = RecoveryState::new(
            1,
            DetectorConfig {
                heartbeat_ms: 10,
                k_missed: 2,
            },
            true,
        );
        r.open_breaker(0);
        r.half_open_breaker(0);
        assert_eq!(r.admit(0), Admission::Probe);
        assert!(r.settle(0, false)); // reopened
        assert_eq!(r.admit(0), Admission::FailFast);
    }
}
