//! The scheduler seam: where the runtime's nondeterminism is decided.
//!
//! Two sources of schedule nondeterminism exist in the threaded runtime:
//! *when a routed message reaches its destination queue* and *when a worker's
//! idle tick fires* (the tick drives lease sweeps and heartbeats). Both are
//! routed through a [`ScheduleSource`] so they can be observed or steered
//! without touching the transport: the default [`FreeRun`] source reproduces
//! the historical behavior exactly (immediate hand-off, 25 ms ticks), while
//! a test harness can delay chosen edges or stretch ticks to force the
//! interleavings it wants to witness.
//!
//! This is the runtime half of the exploration story: `oml-check::explore`
//! enumerates schedules of a *protocol model* today, and this seam is the
//! hook a future virtual-scheduler backend drives the real runtime from —
//! every decision it would need to own already flows through here.
//!
//! Install a custom source with
//! [`ClusterBuilder::schedule_source`](crate::ClusterBuilder::schedule_source).

use std::fmt;
use std::time::Duration;

use oml_core::ids::NodeId;

/// The worker idle tick of the free-running schedule (and the default for
/// any source that does not override [`ScheduleSource::tick`]).
pub const DEFAULT_TICK: Duration = Duration::from_millis(25);

/// What the transport should do with one routed message hand-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendAction {
    /// Hand the message to the destination queue immediately (the default).
    Deliver,
    /// Hold the message for this long before handing it over. Composes with
    /// fault-injected delays by taking the larger of the two.
    Delay(Duration),
}

/// A source of scheduling decisions for the cluster's message hand-offs and
/// worker ticks.
///
/// Implementations must be cheap and lock-free where possible: `on_send`
/// runs on every routed message, inside the sender's hot path.
pub trait ScheduleSource: Send + Sync + fmt::Debug {
    /// Decides one message hand-off from process `from` (a raw node id, or
    /// `u32::MAX` for the client facade) towards node `to`. Called after
    /// fault injection has decided the message survives.
    fn on_send(&self, from: u32, to: NodeId) -> SendAction {
        let _ = (from, to);
        SendAction::Deliver
    }

    /// How long node `node`'s worker waits for a message before running its
    /// maintenance sweep (lease expiry, heartbeat).
    fn tick(&self, node: NodeId) -> Duration {
        let _ = node;
        DEFAULT_TICK
    }
}

/// The threads-and-channels default: every hand-off is immediate and every
/// worker ticks at [`DEFAULT_TICK`].
#[derive(Debug, Default, Clone, Copy)]
pub struct FreeRun;

impl ScheduleSource for FreeRun {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_run_is_pass_through() {
        let s = FreeRun;
        assert_eq!(s.on_send(0, NodeId::new(1)), SendAction::Deliver);
        assert_eq!(s.tick(NodeId::new(0)), DEFAULT_TICK);
    }
}
