//! The mobile-object trait and the per-node type registry.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

/// A migratable object.
///
/// Objects "have a well-defined interface consisting of a set of methods
/// which can be invoked by clients … and encapsulate their state" (§2.1).
/// The runtime never looks inside an object: it dispatches invocations
/// through [`MobileObject::invoke`] and, on migration, linearizes the state
/// with [`MobileObject::linearize`] and reinstalls it with the
/// [`Delinearizer`] registered for its [`MobileObject::type_tag`].
///
/// Payloads and results are raw bytes; the [`crate::wire`] module offers
/// small helpers for encoding them.
pub trait MobileObject: Send {
    /// The type tag naming this object's delinearizer.
    fn type_tag(&self) -> &'static str;

    /// Executes `method` with `payload`, returning the result bytes.
    ///
    /// # Errors
    ///
    /// Returns a message describing the failure (unknown method, bad
    /// payload, domain error); the runtime wraps it in
    /// [`crate::RuntimeError::MethodFailed`].
    fn invoke(&mut self, method: &str, payload: &[u8]) -> Result<Vec<u8>, String>;

    /// Serializes the object's state for transfer.
    fn linearize(&self) -> Vec<u8>;
}

/// Reconstructs an object from its linearized state.
pub type Delinearizer = fn(&[u8]) -> Box<dyn MobileObject>;

/// A shared, concurrent registry mapping type tags to delinearizers.
///
/// Every node consults the same registry when an `Install` message arrives —
/// the runtime analogue of all nodes running the same program text.
#[derive(Clone, Default)]
pub struct TypeRegistry {
    inner: Arc<RwLock<HashMap<String, Delinearizer>>>,
}

impl TypeRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        TypeRegistry::default()
    }

    /// Registers (or replaces) the delinearizer for `tag`.
    pub fn register(&self, tag: &str, f: Delinearizer) {
        self.inner.write().insert(tag.to_owned(), f);
    }

    /// Looks a delinearizer up.
    #[must_use]
    pub fn get(&self, tag: &str) -> Option<Delinearizer> {
        self.inner.read().get(tag).copied()
    }
}

impl std::fmt::Debug for TypeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tags: Vec<String> = self.inner.read().keys().cloned().collect();
        f.debug_struct("TypeRegistry").field("tags", &tags).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo(Vec<u8>);
    impl MobileObject for Echo {
        fn type_tag(&self) -> &'static str {
            "echo"
        }
        fn invoke(&mut self, _method: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
            Ok(payload.to_vec())
        }
        fn linearize(&self) -> Vec<u8> {
            self.0.clone()
        }
    }

    #[test]
    fn registry_round_trip() {
        let reg = TypeRegistry::new();
        assert!(reg.get("echo").is_none());
        reg.register("echo", |bytes| Box::new(Echo(bytes.to_vec())));
        let f = reg.get("echo").expect("registered");
        let mut obj = f(&[1, 2, 3]);
        assert_eq!(obj.linearize(), vec![1, 2, 3]);
        assert_eq!(obj.invoke("x", &[9]).unwrap(), vec![9]);
        assert_eq!(obj.type_tag(), "echo");
    }

    #[test]
    fn registry_is_cloneable_and_shared() {
        let a = TypeRegistry::new();
        let b = a.clone();
        a.register("echo", |bytes| Box::new(Echo(bytes.to_vec())));
        assert!(b.get("echo").is_some());
    }

    #[test]
    fn debug_lists_tags() {
        let reg = TypeRegistry::new();
        reg.register("echo", |bytes| Box::new(Echo(bytes.to_vec())));
        assert!(format!("{reg:?}").contains("echo"));
    }
}
