//! The multi-process runtime: real OS processes over the socket transport.
//!
//! The in-process [`crate::Cluster`] shares its directory, policy tables
//! and checkpoint stores through one address space; across processes that
//! shared state needs an owner. This module uses a **coordinator/worker**
//! split: the coordinator process owns the directory, the incarnation
//! table, the failure detector and the checkpoint cache, and workers are
//! plain object hosts — they install, invoke, surrender, heartbeat. Every
//! protocol message relays through the coordinator's [`SocketServer`], so
//! the transport's star topology is also the protocol's.
//!
//! The recovery machinery deliberately mirrors the in-process runtime,
//! mechanism for mechanism, so `repro availability --multiprocess` is the
//! same experiment with real SIGKILL instead of simulated crashes:
//!
//! * heartbeats + k-missed suspicion + declare-dead (PR 4's detector),
//! * incarnation epochs, bumped on respawn/declare-dead and **fenced at
//!   the socket accept** ([`SocketServer::fence_below`]) — a zombie's
//!   reconnect is refused before one frame is read,
//! * per-object epochs on installs, so a stale install is refused by the
//!   worker exactly like `NodeWorker::handle_install` refuses one,
//! * coordinator-cached checkpoints (seeded at create, refreshed by every
//!   invoke reply's piggybacked state) from which objects stranded on a
//!   dead worker are reinstantiated at a live one.
//!
//! Client calls fail the same way, too: transport death surfaces as
//! [`RuntimeError::NodeDown`], expired waits as
//! [`RuntimeError::Timeout`] — the error surface the availability
//! experiment already measures.

use super::netio::TransportAddr;
use super::socket::{SocketConfig, SocketPeer, SocketServer};
use super::{Transport, TransportError, TransportEvent};
use crate::error::RuntimeError;
use crate::object::{Delinearizer, MobileObject};
use crate::store::{
    CheckpointStore, FsyncPolicy, MemStore, RecoveryReport, StoredCheckpoint, WalStore,
    WalStoreConfig,
};
use crate::wire::{WireReader, WireWriter};
use bytes::Bytes;
use crossbeam::channel::{bounded, Sender};
use oml_check::event::{EventKind, TraceEvent, CLIENT_PROCESS};
use oml_core::ids::{NodeId, ObjectId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// protocol messages

const TAG_INSTALL: u32 = 10;
const TAG_ACK: u32 = 11;
const TAG_INVOKE: u32 = 12;
const TAG_INVOKE_RESP: u32 = 13;
const TAG_SURRENDER: u32 = 14;
const TAG_SURRENDER_RESP: u32 = 15;
const TAG_HEARTBEAT: u32 = 16;
const TAG_SHUTDOWN: u32 = 17;

/// One coordinator↔worker protocol message, linearized with
/// [`crate::wire`] (crate-visible so the framing proptests can round-trip
/// it).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ProtoMsg {
    /// Install (or create) an object under `obj_epoch`; refuse if stale.
    Install {
        corr: u64,
        object: u32,
        type_tag: String,
        state: Vec<u8>,
        obj_epoch: u64,
    },
    /// Generic ok/err reply to `corr`.
    Ack { corr: u64, ok: bool, err: String },
    /// Invoke a method on a hosted object.
    Invoke {
        corr: u64,
        object: u32,
        method: String,
        payload: Vec<u8>,
    },
    /// Invoke reply, piggybacking the object's fresh linearized state so
    /// the coordinator's checkpoint cache stays one call behind at most.
    InvokeResp {
        corr: u64,
        result: Result<Vec<u8>, String>,
        type_tag: String,
        new_state: Vec<u8>,
        obj_epoch: u64,
    },
    /// Give up an object (first half of a migration).
    Surrender { corr: u64, object: u32 },
    /// Surrender reply carrying the linearized state to re-install.
    SurrenderResp {
        corr: u64,
        ok: bool,
        err: String,
        type_tag: String,
        state: Vec<u8>,
        obj_epoch: u64,
    },
    /// Worker liveness beat (node identity comes from the session).
    Heartbeat,
    /// Orderly worker exit.
    Shutdown,
}

impl ProtoMsg {
    pub(crate) fn encode(&self) -> Bytes {
        match self {
            ProtoMsg::Install {
                corr,
                object,
                type_tag,
                state,
                obj_epoch,
            } => WireWriter::new()
                .u32(TAG_INSTALL)
                .u64(*corr)
                .u32(*object)
                .str(type_tag)
                .bytes(state)
                .u64(*obj_epoch)
                .finish(),
            ProtoMsg::Ack { corr, ok, err } => WireWriter::new()
                .u32(TAG_ACK)
                .u64(*corr)
                .u32(u32::from(*ok))
                .str(err)
                .finish(),
            ProtoMsg::Invoke {
                corr,
                object,
                method,
                payload,
            } => WireWriter::new()
                .u32(TAG_INVOKE)
                .u64(*corr)
                .u32(*object)
                .str(method)
                .bytes(payload)
                .finish(),
            ProtoMsg::InvokeResp {
                corr,
                result,
                type_tag,
                new_state,
                obj_epoch,
            } => {
                let (ok, data, err) = match result {
                    Ok(d) => (1u32, d.as_slice(), ""),
                    Err(e) => (0u32, [].as_slice(), e.as_str()),
                };
                WireWriter::new()
                    .u32(TAG_INVOKE_RESP)
                    .u64(*corr)
                    .u32(ok)
                    .bytes(data)
                    .str(err)
                    .str(type_tag)
                    .bytes(new_state)
                    .u64(*obj_epoch)
                    .finish()
            }
            ProtoMsg::Surrender { corr, object } => WireWriter::new()
                .u32(TAG_SURRENDER)
                .u64(*corr)
                .u32(*object)
                .finish(),
            ProtoMsg::SurrenderResp {
                corr,
                ok,
                err,
                type_tag,
                state,
                obj_epoch,
            } => WireWriter::new()
                .u32(TAG_SURRENDER_RESP)
                .u64(*corr)
                .u32(u32::from(*ok))
                .str(err)
                .str(type_tag)
                .bytes(state)
                .u64(*obj_epoch)
                .finish(),
            ProtoMsg::Heartbeat => WireWriter::new().u32(TAG_HEARTBEAT).finish(),
            ProtoMsg::Shutdown => WireWriter::new().u32(TAG_SHUTDOWN).finish(),
        }
    }

    pub(crate) fn decode(buf: &[u8]) -> Result<ProtoMsg, String> {
        let mut r = WireReader::new(buf);
        match r.u32()? {
            TAG_INSTALL => Ok(ProtoMsg::Install {
                corr: r.u64()?,
                object: r.u32()?,
                type_tag: r.str()?,
                state: r.bytes()?,
                obj_epoch: r.u64()?,
            }),
            TAG_ACK => Ok(ProtoMsg::Ack {
                corr: r.u64()?,
                ok: r.u32()? != 0,
                err: r.str()?,
            }),
            TAG_INVOKE => Ok(ProtoMsg::Invoke {
                corr: r.u64()?,
                object: r.u32()?,
                method: r.str()?,
                payload: r.bytes()?,
            }),
            TAG_INVOKE_RESP => {
                let corr = r.u64()?;
                let ok = r.u32()? != 0;
                let data = r.bytes()?;
                let err = r.str()?;
                Ok(ProtoMsg::InvokeResp {
                    corr,
                    result: if ok { Ok(data) } else { Err(err) },
                    type_tag: r.str()?,
                    new_state: r.bytes()?,
                    obj_epoch: r.u64()?,
                })
            }
            TAG_SURRENDER => Ok(ProtoMsg::Surrender {
                corr: r.u64()?,
                object: r.u32()?,
            }),
            TAG_SURRENDER_RESP => Ok(ProtoMsg::SurrenderResp {
                corr: r.u64()?,
                ok: r.u32()? != 0,
                err: r.str()?,
                type_tag: r.str()?,
                state: r.bytes()?,
                obj_epoch: r.u64()?,
            }),
            TAG_HEARTBEAT => Ok(ProtoMsg::Heartbeat),
            TAG_SHUTDOWN => Ok(ProtoMsg::Shutdown),
            other => Err(format!("unknown protocol tag {other}")),
        }
    }
}

// ---------------------------------------------------------------------------
// coordinator

/// Detector verdict for one worker process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcHealth {
    /// Heartbeating normally.
    Up,
    /// Missed beats; revocable.
    Suspected,
    /// Declared dead; incarnation fenced, objects reinstantiated.
    Dead,
}

/// Configuration for [`MultiProcCluster::spawn`].
#[derive(Debug, Clone)]
pub struct MultiProcConfig {
    /// Worker process count (node ids `0..workers`).
    pub workers: u32,
    /// Where the coordinator listens (`Tcp("127.0.0.1:0")` or a Unix
    /// socket path in a fresh temp dir).
    pub addr: TransportAddr,
    /// Per-call reply deadline, ms.
    pub call_timeout_ms: u64,
    /// Worker heartbeat period, ms.
    pub heartbeat_ms: u64,
    /// Missed beats before suspicion.
    pub suspect_after: u32,
    /// Missed beats before declare-dead.
    pub dead_after: u32,
    /// Socket transport tuning (shared by server and the spawned workers'
    /// env, except the seed-derived parts).
    pub socket: SocketConfig,
    /// The worker executable (usually `std::env::current_exe()`).
    pub worker_program: std::path::PathBuf,
    /// Arguments placed before the env-driven worker options.
    pub worker_args: Vec<String>,
    /// Run the background detector thread (tests drive `sweep()` manually
    /// with this off).
    pub monitor: bool,
    /// When set, the coordinator's checkpoint table and incarnation table
    /// live in a [`WalStore`] under `store_dir/coord` instead of plain
    /// memory, so [`MultiProcCluster::recover`] can rebuild the cluster
    /// after the coordinator itself is SIGKILLed.
    pub store_dir: Option<std::path::PathBuf>,
    /// Fsync policy for the durable store (ignored without `store_dir`).
    pub fsync: FsyncPolicy,
}

/// A worker slot at the coordinator.
struct ProcSlot {
    child: Option<Child>,
    incarnation: u64,
    health: ProcHealth,
    last_beat: Instant,
    ever_beat: bool,
}

#[derive(Default)]
struct Counters {
    declared_dead: u64,
    reinstantiated: u64,
    fenced_handshakes: u64,
    reconnects: u64,
    deliveries: u64,
}

struct CoordState {
    slots: Vec<ProcSlot>,
    /// object → hosting worker.
    directory: HashMap<u32, u32>,
    /// The checkpoint table: [`MemStore`] by default, [`WalStore`] when
    /// `cfg.store_dir` is set — the fix for the coordinator's table dying
    /// with the coordinator.
    store: Box<dyn CheckpointStore>,
    pending: HashMap<u64, Sender<ProtoMsg>>,
    counters: Counters,
}

/// What a checkpoint append should report to the trace, if anything:
/// `Some((durable, object_epoch, seq))` only for durable-backed stores, so
/// `MemStore` runs never arm the checker's durability invariants.
type WalNote = Option<(bool, u64, u64)>;

impl CoordState {
    /// Writes `object`'s checkpoint under the next per-object `seq`;
    /// freshness gating is the caller's job.
    fn put_checkpoint(
        &mut self,
        object: u32,
        type_tag: &str,
        state: &[u8],
        obj_epoch: u64,
    ) -> Result<WalNote, crate::store::StoreError> {
        let id = ObjectId::new(object);
        let seq = self.store.get(id).map_or(1, |c| c.seq + 1);
        let durability = self.store.put(
            id,
            StoredCheckpoint {
                type_tag: type_tag.to_owned(),
                state: Bytes::copy_from_slice(state),
                object_epoch: obj_epoch,
                seq,
            },
        )?;
        Ok(self
            .store
            .durable_backed()
            .then_some((durability.is_durable(), obj_epoch, seq)))
    }
}

struct CoordShared {
    cfg: MultiProcConfig,
    server: SocketServer,
    state: Mutex<CoordState>,
    trace: Mutex<Vec<TraceEvent>>,
    next_corr: AtomicU64,
    closed: AtomicBool,
}

impl CoordShared {
    fn trace(&self, kind: EventKind) {
        self.trace
            .lock()
            .push(TraceEvent::new(CLIENT_PROCESS, kind));
    }

    /// Mirrors a durable checkpoint append into the trace (no-op for
    /// in-memory stores).
    fn trace_wal(&self, object: u32, note: WalNote) {
        if let Some((durable, object_epoch, seq)) = note {
            self.trace(EventKind::WalAppended {
                node: CLIENT_PROCESS,
                object: ObjectId::new(object),
                object_epoch,
                seq,
                durable,
            });
        }
    }
}

/// Observable recovery counters, mirroring `Cluster::stats()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultiProcStats {
    /// Workers declared dead by the detector.
    pub declared_dead: u64,
    /// Objects reinstantiated from coordinator checkpoints.
    pub reinstantiated: u64,
    /// Zombie handshakes refused at accept time.
    pub fenced_handshakes: u64,
    /// Worker sessions re-established after an outage.
    pub reconnects: u64,
    /// Payload frames delivered to the coordinator.
    pub deliveries: u64,
}

/// The coordinator: spawns worker processes, owns directory + detector +
/// checkpoint cache, exposes a client API shaped like [`crate::Cluster`].
pub struct MultiProcCluster {
    inner: Arc<CoordShared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl MultiProcCluster {
    /// Binds the server, spawns `cfg.workers` worker processes (incarnation
    /// 1 each) and waits for their first sessions. With `cfg.store_dir`
    /// set, the checkpoint table is durable from the first create.
    ///
    /// # Errors
    /// Bind, spawn or store-open failures.
    pub fn spawn(cfg: MultiProcConfig) -> io::Result<MultiProcCluster> {
        let (store, _report) = open_store(&cfg)?;
        MultiProcCluster::boot(cfg, store, None)
    }

    /// Cold-starts a coordinator from the durable store a dead one left
    /// behind: worker incarnations resume **above** their persisted
    /// floors (so pre-crash zombies stay fenced), every checkpoint in the
    /// store is reinstantiated at a live worker under a bumped object
    /// epoch, and a [`EventKind::ColdRecovered`] event records what came
    /// back.
    ///
    /// # Errors
    /// `cfg.store_dir` unset, store-open failures, bind/spawn failures,
    /// or workers not ready within `ready_timeout`.
    pub fn recover(cfg: MultiProcConfig, ready_timeout: Duration) -> io::Result<MultiProcCluster> {
        if cfg.store_dir.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "recover requires cfg.store_dir",
            ));
        }
        let (store, report) = open_store(&cfg)?;
        let cluster = MultiProcCluster::boot(cfg, store, Some(report))?;
        if !cluster.wait_ready(ready_timeout) {
            cluster.abandon();
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "workers not ready after cold restart",
            ));
        }
        let mut objects: Vec<u32> = {
            let state = cluster.inner.state.lock();
            state
                .store
                .objects()
                .into_iter()
                .map(|o| o.as_u32())
                .collect()
        };
        objects.sort_unstable();
        for object in objects {
            let _ = reinstall_from_checkpoint_shared(&cluster.inner, object);
        }
        Ok(cluster)
    }

    fn boot(
        cfg: MultiProcConfig,
        mut store: Box<dyn CheckpointStore>,
        recovering: Option<RecoveryReport>,
    ) -> io::Result<MultiProcCluster> {
        let server = SocketServer::bind(&cfg.addr, cfg.workers, cfg.socket.clone())?;
        let now = Instant::now();
        // on a cold restart every worker resumes above its persisted
        // incarnation floor; a fresh boot starts everyone at 1
        let incarnations: Vec<u64> = (0..cfg.workers)
            .map(|node| {
                if recovering.is_some() {
                    store.meta(node).unwrap_or(0) + 1
                } else {
                    1
                }
            })
            .collect();
        for (node, &inc) in incarnations.iter().enumerate() {
            let _ = store.set_meta(node as u32, inc).map_err(store_io_err)?;
            server.fence_below(node as u32, inc);
        }
        let recovered = recovering.map(|report| {
            let mut versions: Vec<(ObjectId, u64, u64)> = store
                .objects()
                .into_iter()
                .filter_map(|o| store.get(o).map(|c| (o, c.object_epoch, c.seq)))
                .collect();
            versions.sort_unstable_by_key(|(o, ..)| *o);
            (versions, report.torn_bytes > 0, report.corrupt)
        });
        let slots = incarnations
            .iter()
            .map(|&incarnation| ProcSlot {
                child: None,
                incarnation,
                health: ProcHealth::Up,
                last_beat: now,
                ever_beat: false,
            })
            .collect();
        let inner = Arc::new(CoordShared {
            cfg,
            server,
            state: Mutex::new(CoordState {
                slots,
                directory: HashMap::new(),
                store,
                pending: HashMap::new(),
                counters: Counters::default(),
            }),
            trace: Mutex::new(Vec::new()),
            next_corr: AtomicU64::new(1),
            closed: AtomicBool::new(false),
        });
        if let Some((recovered, torn, corrupt)) = recovered {
            inner.trace(EventKind::ColdRecovered {
                node: CLIENT_PROCESS,
                recovered,
                torn,
                corrupt,
            });
        }
        let cluster = MultiProcCluster {
            inner: Arc::clone(&inner),
            threads: Mutex::new(Vec::new()),
        };

        for (node, &inc) in incarnations.iter().enumerate() {
            cluster.spawn_worker_process(node as u32, inc)?;
        }

        let d_inner = Arc::clone(&inner);
        let dispatcher = std::thread::Builder::new()
            .name("oml-mp-dispatch".into())
            .spawn(move || dispatch_loop(&d_inner))
            .expect("spawn dispatcher");
        cluster.threads.lock().push(dispatcher);

        if inner.cfg.monitor {
            let m_inner = Arc::clone(&inner);
            let monitor = std::thread::Builder::new()
                .name("oml-mp-monitor".into())
                .spawn(move || {
                    while !m_inner.closed.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(m_inner.cfg.heartbeat_ms));
                        sweep_impl(&m_inner);
                    }
                })
                .expect("spawn monitor");
            cluster.threads.lock().push(monitor);
        }
        Ok(cluster)
    }

    /// The server's resolved address (what workers dial).
    #[must_use]
    pub fn addr(&self) -> &TransportAddr {
        self.inner.server.addr()
    }

    fn spawn_worker_process(&self, node: u32, incarnation: u64) -> io::Result<()> {
        let cfg = &self.inner.cfg;
        let child = Command::new(&cfg.worker_program)
            .args(&cfg.worker_args)
            .env("OML_MP_ADDR", self.inner.server.addr().to_string())
            .env("OML_MP_NODE", node.to_string())
            .env("OML_MP_EPOCH", incarnation.to_string())
            .env("OML_MP_HB_MS", cfg.heartbeat_ms.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()?;
        let mut state = self.inner.state.lock();
        let slot = &mut state.slots[node as usize];
        slot.child = Some(child);
        slot.last_beat = Instant::now();
        Ok(())
    }

    /// Blocks until all workers have heartbeat at least once (readiness
    /// barrier for experiments). `false` on timeout.
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let state = self.inner.state.lock();
                if state.slots.iter().all(|s| s.ever_beat) {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn corr(&self) -> u64 {
        self.inner.next_corr.fetch_add(1, Ordering::AcqRel)
    }

    /// Sends `msg` to `node` and awaits the correlated reply.
    fn call(&self, node: u32, corr: u64, msg: &ProtoMsg) -> Result<ProtoMsg, RuntimeError> {
        let (tx, rx) = bounded(1);
        self.inner.state.lock().pending.insert(corr, tx);
        let cleanup = |inner: &CoordShared| {
            inner.state.lock().pending.remove(&corr);
        };
        if let Err(e) = self.inner.server.send(node, msg.encode()) {
            cleanup(&self.inner);
            return Err(map_transport_err(&e, node));
        }
        let timeout = Duration::from_millis(self.inner.cfg.call_timeout_ms);
        match rx.recv_timeout(timeout) {
            Ok(reply) => Ok(reply),
            Err(_) => {
                cleanup(&self.inner);
                Err(RuntimeError::Timeout {
                    waited_ms: self.inner.cfg.call_timeout_ms,
                })
            }
        }
    }

    /// Fail-fast admission mirroring the in-process circuit breaker: calls
    /// to suspected/dead workers return [`RuntimeError::NodeDown`] without
    /// sleeping out the deadline.
    fn admit(&self, node: u32) -> Result<(), RuntimeError> {
        let state = self.inner.state.lock();
        match state.slots.get(node as usize) {
            Some(slot) if slot.health == ProcHealth::Up => Ok(()),
            Some(_) => Err(RuntimeError::NodeDown(NodeId::new(node))),
            None => Err(RuntimeError::UnknownNode(NodeId::new(node))),
        }
    }

    /// Creates `object` at `node` with its initial linearized `state`.
    ///
    /// # Errors
    /// Standard call-path errors plus a failed install ack.
    pub fn create(
        &self,
        node: u32,
        object: u32,
        type_tag: &str,
        state: Vec<u8>,
    ) -> Result<(), RuntimeError> {
        self.admit(node)?;
        let corr = self.corr();
        let msg = ProtoMsg::Install {
            corr,
            object,
            type_tag: type_tag.to_owned(),
            state: state.clone(),
            obj_epoch: 1,
        };
        match self.call(node, corr, &msg)? {
            ProtoMsg::Ack { ok: true, .. } => {
                // the create is acked to the caller only once the
                // checkpoint is recorded (durably, for a WalStore under
                // fsync=Always)
                let wal_note = {
                    let mut st = self.inner.state.lock();
                    st.directory.insert(object, node);
                    st.put_checkpoint(object, type_tag, &state, 1)
                };
                match wal_note {
                    Ok(appended) => {
                        self.inner.trace_wal(object, appended);
                        Ok(())
                    }
                    Err(e) => Err(RuntimeError::MethodFailed {
                        object: ObjectId::new(object),
                        message: format!("checkpoint store: {e}"),
                    }),
                }
            }
            ProtoMsg::Ack { err, .. } => Err(RuntimeError::MethodFailed {
                object: ObjectId::new(object),
                message: err,
            }),
            other => Err(RuntimeError::MethodFailed {
                object: ObjectId::new(object),
                message: format!("unexpected reply {other:?}"),
            }),
        }
    }

    /// Invokes `method` on `object` wherever it lives. The reply's
    /// piggybacked state refreshes the coordinator's checkpoint.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownObject`] for unknown ids,
    /// [`RuntimeError::NodeDown`] fail-fast for suspected/dead hosts,
    /// [`RuntimeError::Timeout`] on an expired wait.
    pub fn invoke(
        &self,
        object: u32,
        method: &str,
        payload: &[u8],
    ) -> Result<Vec<u8>, RuntimeError> {
        let node = {
            let state = self.inner.state.lock();
            *state
                .directory
                .get(&object)
                .ok_or(RuntimeError::UnknownObject(ObjectId::new(object)))?
        };
        self.admit(node)?;
        let corr = self.corr();
        let msg = ProtoMsg::Invoke {
            corr,
            object,
            method: method.to_owned(),
            payload: payload.to_vec(),
        };
        match self.call(node, corr, &msg)? {
            ProtoMsg::InvokeResp {
                result,
                type_tag,
                new_state,
                obj_epoch,
                ..
            } => {
                if result.is_ok() {
                    // freshness-gated refresh: never let a stale epoch's
                    // piggybacked state clobber a newer checkpoint
                    let wal_note = {
                        let mut st = self.inner.state.lock();
                        let fresh = st
                            .store
                            .get(ObjectId::new(object))
                            .is_none_or(|c| obj_epoch >= c.object_epoch);
                        if fresh {
                            st.put_checkpoint(object, &type_tag, &new_state, obj_epoch)
                                .ok()
                                .flatten()
                        } else {
                            None
                        }
                    };
                    self.inner.trace_wal(object, wal_note);
                }
                result.map_err(|message| RuntimeError::MethodFailed {
                    object: ObjectId::new(object),
                    message,
                })
            }
            other => Err(RuntimeError::MethodFailed {
                object: ObjectId::new(object),
                message: format!("unexpected reply {other:?}"),
            }),
        }
    }

    /// Migrates `object` to `to`: surrender at the current host, install
    /// at the target under a bumped object epoch. If the install leg fails
    /// the object is recovered from its checkpoint at any live worker.
    ///
    /// # Errors
    /// Standard call-path errors from either leg.
    pub fn migrate(&self, object: u32, to: u32) -> Result<(), RuntimeError> {
        let from = {
            let state = self.inner.state.lock();
            *state
                .directory
                .get(&object)
                .ok_or(RuntimeError::UnknownObject(ObjectId::new(object)))?
        };
        if from == to {
            return Ok(());
        }
        self.admit(from)?;
        self.admit(to)?;
        let corr = self.corr();
        let reply = self.call(from, corr, &ProtoMsg::Surrender { corr, object })?;
        let (type_tag, state, obj_epoch) = match reply {
            ProtoMsg::SurrenderResp {
                ok: true,
                type_tag,
                state,
                obj_epoch,
                ..
            } => (type_tag, state, obj_epoch),
            ProtoMsg::SurrenderResp { err, .. } => {
                return Err(RuntimeError::MethodFailed {
                    object: ObjectId::new(object),
                    message: err,
                })
            }
            other => {
                return Err(RuntimeError::MethodFailed {
                    object: ObjectId::new(object),
                    message: format!("unexpected reply {other:?}"),
                })
            }
        };
        // the object now exists only as bytes; record the checkpoint
        // before attempting the install leg — if the store refuses, abort
        // the migration with the object still recoverable from the cache
        let next_epoch = obj_epoch + 1;
        let note = {
            let mut st = self.inner.state.lock();
            let note = st.put_checkpoint(object, &type_tag, &state, next_epoch);
            if note.is_ok() {
                st.directory.remove(&object);
            }
            note
        };
        match note {
            Ok(note) => self.inner.trace_wal(object, note),
            Err(e) => {
                return Err(RuntimeError::MethodFailed {
                    object: ObjectId::new(object),
                    message: format!("checkpoint store: {e}"),
                })
            }
        }
        let corr = self.corr();
        let install = ProtoMsg::Install {
            corr,
            object,
            type_tag,
            state,
            obj_epoch: next_epoch,
        };
        match self.call(to, corr, &install) {
            Ok(ProtoMsg::Ack { ok: true, .. }) => {
                self.inner.state.lock().directory.insert(object, to);
                Ok(())
            }
            Ok(ProtoMsg::Ack { err, .. }) => {
                self.recover_object(object);
                Err(RuntimeError::MethodFailed {
                    object: ObjectId::new(object),
                    message: err,
                })
            }
            Ok(other) => {
                self.recover_object(object);
                Err(RuntimeError::MethodFailed {
                    object: ObjectId::new(object),
                    message: format!("unexpected reply {other:?}"),
                })
            }
            Err(e) => {
                self.recover_object(object);
                Err(e)
            }
        }
    }

    /// Best-effort reinstall of a homeless object from its checkpoint at
    /// any Up worker (used after a failed install leg; the detector sweep
    /// uses the same path for objects stranded on dead workers).
    fn recover_object(&self, object: u32) {
        let _ = reinstall_from_checkpoint_shared(&self.inner, object);
    }

    /// Where `object` currently lives, if anywhere.
    #[must_use]
    pub fn location_of(&self, object: u32) -> Option<u32> {
        self.inner.state.lock().directory.get(&object).copied()
    }

    /// The detector's verdict for `node`.
    #[must_use]
    pub fn health(&self, node: u32) -> ProcHealth {
        self.inner.state.lock().slots[node as usize].health
    }

    /// SIGKILLs worker `node` (no warning, no cleanup — the real thing).
    /// The detector discovers the death from missed heartbeats.
    pub fn kill(&self, node: u32) {
        let child = {
            let mut state = self.inner.state.lock();
            state.slots[node as usize].child.take()
        };
        if let Some(mut child) = child {
            let _ = child.kill(); // SIGKILL on unix
            let _ = child.wait(); // reap
        }
        self.inner.trace(EventKind::Crash {
            node: NodeId::new(node),
        });
    }

    /// Respawns worker `node` under a **bumped** incarnation; the old
    /// incarnation is fenced at the socket accept from here on.
    ///
    /// # Errors
    /// Process spawn failures.
    pub fn respawn(&self, node: u32) -> io::Result<()> {
        let incarnation = {
            let mut state = self.inner.state.lock();
            let slot = &mut state.slots[node as usize];
            slot.incarnation += 1;
            slot.health = ProcHealth::Up;
            slot.last_beat = Instant::now();
            slot.ever_beat = false;
            let incarnation = slot.incarnation;
            let _ = state.store.set_meta(node, incarnation);
            incarnation
        };
        self.inner.server.fence_below(node, incarnation);
        self.inner.trace(EventKind::Restart {
            node: NodeId::new(node),
        });
        self.spawn_worker_process(node, incarnation)
    }

    /// Respawns worker `node` presenting a **stale** incarnation — the
    /// zombie negative control. Its handshake must be refused; the
    /// process observes the refusal and exits.
    ///
    /// # Errors
    /// Process spawn failures.
    pub fn respawn_zombie(&self, node: u32) -> io::Result<()> {
        let stale = {
            let state = self.inner.state.lock();
            state.slots[node as usize].incarnation.saturating_sub(1)
        };
        let cfg = &self.inner.cfg;
        let child = Command::new(&cfg.worker_program)
            .args(&cfg.worker_args)
            .env("OML_MP_ADDR", self.inner.server.addr().to_string())
            .env("OML_MP_NODE", node.to_string())
            .env("OML_MP_EPOCH", stale.to_string())
            .env("OML_MP_HB_MS", cfg.heartbeat_ms.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()?;
        // the zombie is not this slot's child — it must die on its own
        std::thread::Builder::new()
            .name("oml-mp-zombie-reaper".into())
            .spawn(move || {
                let mut child = child;
                let _ = child.wait();
            })
            .expect("spawn zombie reaper");
        Ok(())
    }

    /// One failure-detector pass under the caller's clock (the monitor
    /// thread calls this periodically when `cfg.monitor` is on).
    pub fn sweep(&self) {
        sweep_impl(&self.inner);
    }

    /// Recovery counters so far.
    #[must_use]
    pub fn stats(&self) -> MultiProcStats {
        let state = self.inner.state.lock();
        MultiProcStats {
            declared_dead: state.counters.declared_dead,
            reinstantiated: state.counters.reinstantiated,
            fenced_handshakes: state.counters.fenced_handshakes,
            reconnects: state.counters.reconnects,
            deliveries: state.counters.deliveries,
        }
    }

    /// Drains the collected protocol/transport trace (feed it to
    /// `oml_check::check_trace`).
    #[must_use]
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.inner.trace.lock())
    }

    /// Orderly teardown: Shutdown to live workers, short grace, SIGKILL
    /// stragglers, then server + thread teardown.
    pub fn shutdown(&self) {
        let live: Vec<u32> = {
            let state = self.inner.state.lock();
            state
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.child.is_some())
                .map(|(n, _)| n as u32)
                .collect()
        };
        for node in live {
            let _ = self.inner.server.send(node, ProtoMsg::Shutdown.encode());
        }
        let grace = Instant::now() + Duration::from_millis(500);
        loop {
            let mut all_gone = true;
            {
                let mut state = self.inner.state.lock();
                for slot in &mut state.slots {
                    if let Some(child) = &mut slot.child {
                        match child.try_wait() {
                            Ok(Some(_)) => slot.child = None,
                            _ => all_gone = false,
                        }
                    }
                }
            }
            if all_gone || Instant::now() >= grace {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        {
            let mut state = self.inner.state.lock();
            for slot in &mut state.slots {
                if let Some(mut child) = slot.child.take() {
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
        }
        self.inner.closed.store(true, Ordering::Release);
        self.inner.server.shutdown();
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Coordinator-death teardown: SIGKILL every worker and tear the
    /// server down **without** any Shutdown protocol message or store
    /// flush — whatever the WAL holds is all a successor gets. The
    /// in-process analogue of SIGKILLing the coordinator, for
    /// [`MultiProcCluster::recover`] tests.
    pub fn abandon(&self) {
        let children: Vec<Child> = {
            let mut state = self.inner.state.lock();
            state
                .slots
                .iter_mut()
                .filter_map(|s| s.child.take())
                .collect()
        };
        for mut child in children {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.inner.closed.store(true, Ordering::Release);
        self.inner.server.shutdown();
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// OS pids of the live worker processes (for orchestration that must
    /// SIGKILL the whole process tree from outside, e.g. the cold-restart
    /// experiment killing workers orphaned by a coordinator death).
    #[must_use]
    pub fn worker_pids(&self) -> Vec<u32> {
        self.inner
            .state
            .lock()
            .slots
            .iter()
            .filter_map(|s| s.child.as_ref().map(Child::id))
            .collect()
    }

    /// Every object the directory currently places somewhere (sorted).
    #[must_use]
    pub fn objects(&self) -> Vec<u32> {
        let mut objects: Vec<u32> = self.inner.state.lock().directory.keys().copied().collect();
        objects.sort_unstable();
        objects
    }

    /// The checkpoint store's WAL counters (zeros for in-memory runs).
    #[must_use]
    pub fn wal_stats(&self) -> crate::store::WalStats {
        self.inner.state.lock().store.wal_stats()
    }
}

/// Opens the coordinator's checkpoint store: a [`WalStore`] under
/// `store_dir/coord` when configured, else a [`MemStore`].
fn open_store(cfg: &MultiProcConfig) -> io::Result<(Box<dyn CheckpointStore>, RecoveryReport)> {
    match &cfg.store_dir {
        Some(dir) => {
            let (store, report) =
                WalStore::open(WalStoreConfig::with_fsync(dir.join("coord"), cfg.fsync))
                    .map_err(store_io_err)?;
            Ok((Box::new(store), report))
        }
        None => Ok((Box::new(MemStore::new()), RecoveryReport::default())),
    }
}

fn store_io_err(e: crate::store::StoreError) -> io::Error {
    io::Error::other(e.to_string())
}

fn map_transport_err(e: &TransportError, node: u32) -> RuntimeError {
    match e {
        TransportError::Down { .. } | TransportError::Fenced { .. } => {
            RuntimeError::NodeDown(NodeId::new(node))
        }
        TransportError::Closed => RuntimeError::ShuttingDown,
        TransportError::Backpressure { waited_ms } | TransportError::Timeout { waited_ms } => {
            RuntimeError::Timeout {
                waited_ms: *waited_ms,
            }
        }
        TransportError::Io(_) => RuntimeError::NodeDown(NodeId::new(node)),
    }
}

/// The coordinator's inbound loop: routes replies to waiting calls, feeds
/// heartbeats to the detector, mirrors transport events into the trace.
fn dispatch_loop(inner: &Arc<CoordShared>) {
    while !inner.closed.load(Ordering::Acquire) {
        let ev = match inner.server.recv_timeout(0, Duration::from_millis(20)) {
            Ok(ev) => ev,
            Err(TransportError::Closed) => return,
            Err(_) => continue,
        };
        match ev {
            TransportEvent::Delivery { from, epoch, msg } => {
                inner.trace(EventKind::TransportDelivery { peer: from, epoch });
                let Ok(decoded) = ProtoMsg::decode(&msg) else {
                    continue;
                };
                let mut state = inner.state.lock();
                state.counters.deliveries += 1;
                // fencing belt-and-braces: the accept-time fence is the
                // contract, but a session accepted before a bump could
                // still drain; drop anything from a stale incarnation
                if epoch < state.slots[from as usize].incarnation {
                    drop(state);
                    inner.trace(EventKind::FencedStale { epoch });
                    continue;
                }
                match decoded {
                    ProtoMsg::Heartbeat => {
                        let slot = &mut state.slots[from as usize];
                        slot.last_beat = Instant::now();
                        slot.ever_beat = true;
                        if slot.health == ProcHealth::Suspected {
                            slot.health = ProcHealth::Up;
                        }
                    }
                    ProtoMsg::Ack { corr, .. }
                    | ProtoMsg::InvokeResp { corr, .. }
                    | ProtoMsg::SurrenderResp { corr, .. } => {
                        // a reply is as good as a heartbeat
                        {
                            let slot = &mut state.slots[from as usize];
                            slot.last_beat = Instant::now();
                            slot.ever_beat = true;
                        }
                        if let Some(tx) = state.pending.remove(&corr) {
                            let _ = tx.try_send(decoded);
                        }
                    }
                    _ => {}
                }
            }
            TransportEvent::Connected { peer, epoch } => {
                inner.trace(EventKind::TransportConnected { peer, epoch });
            }
            TransportEvent::Reconnected {
                peer,
                epoch,
                attempt,
            } => {
                inner.state.lock().counters.reconnects += 1;
                inner.trace(EventKind::TransportReconnected {
                    peer,
                    epoch,
                    attempt,
                });
            }
            TransportEvent::Disconnected { peer } => {
                inner.trace(EventKind::TransportDisconnected { peer });
            }
            TransportEvent::HandshakeFenced { peer, epoch } => {
                inner.state.lock().counters.fenced_handshakes += 1;
                inner.trace(EventKind::HandshakeFenced { peer, epoch });
            }
        }
    }
}

/// One detector pass: Up→Suspected after `suspect_after` missed beats,
/// Suspected→Dead after `dead_after`; death fences the incarnation and
/// reinstantiates the dead worker's objects from checkpoints.
fn sweep_impl(inner: &Arc<CoordShared>) {
    let hb = inner.cfg.heartbeat_ms;
    let mut newly_dead: Vec<u32> = Vec::new();
    let mut newly_suspected: Vec<u32> = Vec::new();
    {
        let mut state = inner.state.lock();
        for (node, slot) in state.slots.iter_mut().enumerate() {
            let silent_ms = slot.last_beat.elapsed().as_millis() as u64;
            match slot.health {
                ProcHealth::Up => {
                    if silent_ms > hb * u64::from(inner.cfg.suspect_after) {
                        slot.health = ProcHealth::Suspected;
                        newly_suspected.push(node as u32);
                    }
                }
                ProcHealth::Suspected => {
                    if silent_ms > hb * u64::from(inner.cfg.dead_after) {
                        slot.health = ProcHealth::Dead;
                        slot.incarnation += 1;
                        newly_dead.push(node as u32);
                    }
                }
                ProcHealth::Dead => {}
            }
        }
        state.counters.declared_dead += newly_dead.len() as u64;
        // persist bumped incarnations so a cold-restarted coordinator
        // keeps the fence above any pre-crash zombie
        for &node in &newly_dead {
            let incarnation = state.slots[node as usize].incarnation;
            let _ = state.store.set_meta(node, incarnation);
        }
    }
    for node in newly_suspected {
        inner.trace(EventKind::Suspected {
            node: NodeId::new(node),
        });
    }
    for node in newly_dead {
        let incarnation = {
            let state = inner.state.lock();
            state.slots[node as usize].incarnation
        };
        inner.server.fence_below(node, incarnation);
        inner.trace(EventKind::DeclaredDead {
            node: NodeId::new(node),
        });
        // reinstantiate everything stranded on the dead worker
        let stranded: Vec<u32> = {
            let state = inner.state.lock();
            state
                .directory
                .iter()
                .filter(|(_, &n)| n == node)
                .map(|(&o, _)| o)
                .collect()
        };
        for object in stranded {
            let _ = reinstall_from_checkpoint_shared(inner, object);
        }
    }
}

/// Reinstalls `object` from its checkpoint at the first Up worker, under a
/// bumped object epoch. Used by the sweep (dead host) and the failed
/// install leg of a migration.
fn reinstall_from_checkpoint_shared(inner: &Arc<CoordShared>, object: u32) -> Option<u32> {
    let (type_tag, ck_state, next_epoch, target) = {
        let state = inner.state.lock();
        let ck = state.store.get(ObjectId::new(object))?;
        let target = state
            .slots
            .iter()
            .position(|s| s.health == ProcHealth::Up)
            .map(|i| i as u32)?;
        (
            ck.type_tag.clone(),
            ck.state.to_vec(),
            ck.object_epoch + 1,
            target,
        )
    };
    let corr = inner.next_corr.fetch_add(1, Ordering::AcqRel);
    let msg = ProtoMsg::Install {
        corr,
        object,
        type_tag: type_tag.clone(),
        state: ck_state.clone(),
        obj_epoch: next_epoch,
    };
    let (tx, rx) = bounded(1);
    inner.state.lock().pending.insert(corr, tx);
    if inner.server.send(target, msg.encode()).is_err() {
        inner.state.lock().pending.remove(&corr);
        return None;
    }
    let ok = matches!(
        rx.recv_timeout(Duration::from_millis(inner.cfg.call_timeout_ms)),
        Ok(ProtoMsg::Ack { ok: true, .. })
    );
    if !ok {
        inner.state.lock().pending.remove(&corr);
        return None;
    }
    let note = {
        let mut state = inner.state.lock();
        state.directory.insert(object, target);
        let note = state
            .put_checkpoint(object, &type_tag, &ck_state, next_epoch)
            .ok()
            .flatten();
        state.counters.reinstantiated += 1;
        note
    };
    inner.trace_wal(object, note);
    inner.trace(EventKind::Reinstantiated {
        object: ObjectId::new(object),
        at: NodeId::new(target),
        epoch: next_epoch,
    });
    Some(target)
}

// ---------------------------------------------------------------------------
// worker

/// How a worker's main loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// The coordinator asked for an orderly shutdown.
    Shutdown,
    /// The handshake was refused — this incarnation is a fenced zombie and
    /// must not act.
    Fenced,
}

/// A worker process's configuration, normally read from the environment
/// the coordinator set ([`WorkerOptions::from_env`]).
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// The coordinator's listen address.
    pub addr: TransportAddr,
    /// This worker's node id.
    pub node: u32,
    /// This worker's incarnation (presented in the handshake).
    pub epoch: u64,
    /// Heartbeat period, ms.
    pub heartbeat_ms: u64,
    /// Socket transport tuning.
    pub socket: SocketConfig,
}

impl WorkerOptions {
    /// Reads `OML_MP_ADDR` / `OML_MP_NODE` / `OML_MP_EPOCH` /
    /// `OML_MP_HB_MS`. `None` when the process was not launched as a
    /// worker (the vars are absent).
    #[must_use]
    pub fn from_env() -> Option<WorkerOptions> {
        let addr = TransportAddr::parse(&std::env::var("OML_MP_ADDR").ok()?).ok()?;
        let node = std::env::var("OML_MP_NODE").ok()?.parse().ok()?;
        let epoch = std::env::var("OML_MP_EPOCH").ok()?.parse().ok()?;
        let heartbeat_ms = std::env::var("OML_MP_HB_MS").ok()?.parse().ok()?;
        Some(WorkerOptions {
            addr,
            node,
            epoch,
            heartbeat_ms,
            socket: SocketConfig::default(),
        })
    }
}

/// Runs a worker process's main loop: connect (handshaking node id +
/// incarnation), host objects, heartbeat, answer protocol messages.
/// Returns when fenced or asked to shut down — callers should exit the
/// process promptly either way.
///
/// # Errors
/// None currently — transport failures are ridden out by the supervisor —
/// but the signature reserves the right.
pub fn run_worker(opts: &WorkerOptions, types: &[(&str, Delinearizer)]) -> io::Result<WorkerExit> {
    let peer = SocketPeer::connect(
        opts.addr.clone(),
        opts.node,
        opts.epoch,
        opts.socket.clone(),
    );
    let registry: HashMap<&str, Delinearizer> = types.iter().copied().collect();
    let mut objects: HashMap<u32, (Box<dyn MobileObject>, u64)> = HashMap::new();
    let hb = Duration::from_millis(opts.heartbeat_ms.max(1));
    // None = never beaten, so the first loop iteration beats immediately
    let mut last_beat: Option<Instant> = None;

    loop {
        if peer.is_fenced() {
            peer.shutdown();
            return Ok(WorkerExit::Fenced);
        }
        if last_beat.is_none_or(|t| t.elapsed() >= hb / 2) {
            // ignore failures: while down the beat queues (bounded) or the
            // supervisor is already on it
            let _ = peer.send(0, ProtoMsg::Heartbeat.encode());
            last_beat = Some(Instant::now());
        }
        let ev = match peer.recv_timeout(0, Duration::from_millis(10)) {
            Ok(ev) => ev,
            Err(TransportError::Closed) => return Ok(WorkerExit::Shutdown),
            Err(_) => continue,
        };
        let msg = match ev {
            TransportEvent::Delivery { msg, .. } => msg,
            TransportEvent::HandshakeFenced { .. } => {
                peer.shutdown();
                return Ok(WorkerExit::Fenced);
            }
            _ => continue,
        };
        let Ok(decoded) = ProtoMsg::decode(&msg) else {
            continue;
        };
        match decoded {
            ProtoMsg::Install {
                corr,
                object,
                type_tag,
                state,
                obj_epoch,
            } => {
                let reply = match objects.get(&object) {
                    // the same fencing rule as NodeWorker::handle_install:
                    // never let an older incarnation of an object replace
                    // a newer one
                    Some((_, have)) if obj_epoch <= *have => ProtoMsg::Ack {
                        corr,
                        ok: false,
                        err: format!("stale object epoch {obj_epoch} <= {have}"),
                    },
                    _ => match registry.get(type_tag.as_str()) {
                        Some(delin) => {
                            objects.insert(object, (delin(&state), obj_epoch));
                            ProtoMsg::Ack {
                                corr,
                                ok: true,
                                err: String::new(),
                            }
                        }
                        None => ProtoMsg::Ack {
                            corr,
                            ok: false,
                            err: format!("no delinearizer for `{type_tag}`"),
                        },
                    },
                };
                let _ = peer.send(0, reply.encode());
            }
            ProtoMsg::Invoke {
                corr,
                object,
                method,
                payload,
            } => {
                let reply = match objects.get_mut(&object) {
                    Some((obj, obj_epoch)) => {
                        let result = obj.invoke(&method, &payload);
                        ProtoMsg::InvokeResp {
                            corr,
                            result,
                            type_tag: obj.type_tag().to_owned(),
                            new_state: obj.linearize(),
                            obj_epoch: *obj_epoch,
                        }
                    }
                    None => ProtoMsg::InvokeResp {
                        corr,
                        result: Err(format!("object o{object} is not hosted here")),
                        type_tag: String::new(),
                        new_state: Vec::new(),
                        obj_epoch: 0,
                    },
                };
                let _ = peer.send(0, reply.encode());
            }
            ProtoMsg::Surrender { corr, object } => {
                let reply = match objects.remove(&object) {
                    Some((obj, obj_epoch)) => ProtoMsg::SurrenderResp {
                        corr,
                        ok: true,
                        err: String::new(),
                        type_tag: obj.type_tag().to_owned(),
                        state: obj.linearize(),
                        obj_epoch,
                    },
                    None => ProtoMsg::SurrenderResp {
                        corr,
                        ok: false,
                        err: format!("object o{object} is not hosted here"),
                        type_tag: String::new(),
                        state: Vec::new(),
                        obj_epoch: 0,
                    },
                };
                let _ = peer.send(0, reply.encode());
            }
            ProtoMsg::Shutdown => {
                // give the writer a beat to flush queued replies
                std::thread::sleep(Duration::from_millis(50));
                peer.shutdown();
                return Ok(WorkerExit::Shutdown);
            }
            // coordinator never sends these to a worker
            ProtoMsg::Ack { .. }
            | ProtoMsg::InvokeResp { .. }
            | ProtoMsg::SurrenderResp { .. }
            | ProtoMsg::Heartbeat => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proto_messages_round_trip() {
        let msgs = [
            ProtoMsg::Install {
                corr: 7,
                object: 3,
                type_tag: "counter".into(),
                state: vec![1, 2, 3],
                obj_epoch: 2,
            },
            ProtoMsg::Ack {
                corr: 7,
                ok: true,
                err: String::new(),
            },
            ProtoMsg::Invoke {
                corr: 8,
                object: 3,
                method: "add".into(),
                payload: vec![9],
            },
            ProtoMsg::InvokeResp {
                corr: 8,
                result: Ok(vec![4, 5]),
                type_tag: "counter".into(),
                new_state: vec![6],
                obj_epoch: 2,
            },
            ProtoMsg::InvokeResp {
                corr: 9,
                result: Err("boom".into()),
                type_tag: "counter".into(),
                new_state: vec![],
                obj_epoch: 2,
            },
            ProtoMsg::Surrender {
                corr: 10,
                object: 3,
            },
            ProtoMsg::SurrenderResp {
                corr: 10,
                ok: false,
                err: "gone".into(),
                type_tag: String::new(),
                state: vec![],
                obj_epoch: 0,
            },
            ProtoMsg::Heartbeat,
            ProtoMsg::Shutdown,
        ];
        for msg in msgs {
            let wire = msg.encode();
            assert_eq!(ProtoMsg::decode(&wire).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn truncated_proto_messages_are_rejected() {
        let wire = ProtoMsg::Invoke {
            corr: 1,
            object: 2,
            method: "m".into(),
            payload: vec![1, 2, 3],
        }
        .encode();
        for cut in 0..wire.len() {
            assert!(
                ProtoMsg::decode(&wire[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn worker_options_roundtrip_via_env_format() {
        // from_env parses what the coordinator serializes; exercised
        // end-to-end in tests/multiproc.rs — here just the addr formats
        let unix = TransportAddr::parse("unix:/tmp/x.sock").unwrap();
        assert_eq!(unix.to_string(), "unix:/tmp/x.sock");
        let tcp = TransportAddr::parse("tcp:127.0.0.1:41000").unwrap();
        assert_eq!(tcp.to_string(), "tcp:127.0.0.1:41000");
    }
}
