//! Capped exponential backoff with deterministic jitter, and the
//! per-link reconnect supervisor state machine.
//!
//! Both are **pure state machines over an injected clock** (`now_ms`
//! parameters, no `Instant::now()` inside) so tests can drive the whole
//! reconnect lifecycle — failure, backoff growth, cap, half-open probe,
//! success reset, terminal fencing — under a manual clock, exactly like
//! the lease tests of PR 1.
//!
//! Jitter is *decorrelated but seeded*: each delay is
//! `base·2^attempt / 2 + uniform(0 ..= base·2^attempt / 2)`, the uniform
//! part drawn from a SplitMix64 stream derived from the configured seed.
//! The same seed therefore reproduces the same dial schedule — reconnect
//! storms stay replayable, like every other randomized decision in this
//! workspace.

/// Tuning for one link's backoff schedule.
#[derive(Debug, Clone, Copy)]
pub struct BackoffConfig {
    /// First delay's full window, in milliseconds.
    pub base_ms: u64,
    /// Ceiling for the exponential window, in milliseconds.
    pub cap_ms: u64,
    /// Seed for the jitter stream (deterministic per seed).
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base_ms: 10,
            cap_ms: 2_000,
            seed: 0x6F6D_6C62, // "omlb"
        }
    }
}

/// SplitMix64 step — the same tiny generator the fault injector uses for
/// per-decision hashing.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Capped exponential backoff with seeded half-jitter.
#[derive(Debug, Clone)]
pub struct Backoff {
    cfg: BackoffConfig,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A fresh schedule at attempt zero.
    #[must_use]
    pub fn new(cfg: BackoffConfig) -> Self {
        Backoff {
            cfg,
            attempt: 0,
            rng: cfg.seed,
        }
    }

    /// Delay before the next attempt, in milliseconds, and advances the
    /// attempt counter. Always in `[window/2, window]` where `window`
    /// doubles per attempt up to `cap_ms`.
    pub fn next_delay_ms(&mut self) -> u64 {
        let window = self
            .cfg
            .base_ms
            .saturating_mul(1u64 << self.attempt.min(32))
            .min(self.cfg.cap_ms)
            .max(1);
        self.attempt = self.attempt.saturating_add(1);
        let half = window / 2;
        let jitter = if half == 0 {
            0
        } else {
            splitmix64(&mut self.rng) % (half + 1)
        };
        (window - half) + jitter
    }

    /// Attempts issued since the last [`reset`](Self::reset).
    #[must_use]
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Clears the schedule after a successful connection. The jitter
    /// stream is **not** rewound — determinism is per seed over the whole
    /// lifetime, not per outage.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// Supervised state of one link, driven by [`Supervisor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// A session is established under the peer's incarnation `epoch`.
    Connected {
        /// The authenticated incarnation.
        epoch: u64,
    },
    /// No session; the next dial is allowed at `retry_at_ms`.
    Backoff {
        /// Manual-clock instant when the next dial becomes due.
        retry_at_ms: u64,
    },
    /// A dial is in flight (half-open): exactly one probe at a time, so a
    /// dead peer is hit by one connect per backoff window, not a stampede.
    Probing,
    /// Terminally fenced — our incarnation was refused; never dial again.
    Fenced {
        /// The stale incarnation the handshake presented.
        epoch: u64,
    },
}

/// The reconnect state machine for one link. The socket layer owns one per
/// peer and calls the transition methods; tests drive it directly with a
/// manual clock.
#[derive(Debug, Clone)]
pub struct Supervisor {
    state: LinkState,
    backoff: Backoff,
    /// Dial attempts in the *current* outage (resets on success).
    outage_attempts: u32,
    /// Total successful (re-)connections ever.
    sessions: u64,
}

impl Supervisor {
    /// A supervisor whose first dial is due immediately.
    #[must_use]
    pub fn new(cfg: BackoffConfig) -> Self {
        Supervisor {
            state: LinkState::Backoff { retry_at_ms: 0 },
            backoff: Backoff::new(cfg),
            outage_attempts: 0,
            sessions: 0,
        }
    }

    /// Current link state.
    #[must_use]
    pub fn state(&self) -> LinkState {
        self.state
    }

    /// Whether a dial probe should be launched now. True only in
    /// [`LinkState::Backoff`] with the retry instant reached — never while
    /// already probing, connected or fenced.
    #[must_use]
    pub fn due(&self, now_ms: u64) -> bool {
        matches!(self.state, LinkState::Backoff { retry_at_ms } if now_ms >= retry_at_ms)
    }

    /// Claims the half-open probe slot. Call when launching a dial that
    /// [`due`](Self::due) allowed.
    pub fn begin_probe(&mut self) {
        debug_assert!(matches!(self.state, LinkState::Backoff { .. }));
        self.outage_attempts = self.outage_attempts.saturating_add(1);
        self.state = LinkState::Probing;
    }

    /// The probe's handshake succeeded under the peer incarnation `epoch`.
    /// Returns the attempt count this outage took (for the
    /// `Reconnected { attempt }` trace event) — 1 for a first-try connect.
    pub fn on_established(&mut self, epoch: u64) -> u32 {
        let attempts = self.outage_attempts.max(1);
        self.state = LinkState::Connected { epoch };
        self.backoff.reset();
        self.outage_attempts = 0;
        self.sessions += 1;
        attempts
    }

    /// A dial failed or a live session died: schedule the next probe.
    /// Returns the manual-clock instant the next dial becomes due.
    pub fn on_failure(&mut self, now_ms: u64) -> u64 {
        let retry_at_ms = now_ms + self.backoff.next_delay_ms();
        self.state = LinkState::Backoff { retry_at_ms };
        retry_at_ms
    }

    /// The handshake was refused as stale. Terminal.
    pub fn on_fenced(&mut self, epoch: u64) {
        self.state = LinkState::Fenced { epoch };
    }

    /// Dial attempts issued in the current outage (1 right after the
    /// first [`begin_probe`](Self::begin_probe); 0 while connected).
    #[must_use]
    pub fn outage_attempts(&self) -> u32 {
        self.outage_attempts
    }

    /// Successful sessions over this supervisor's lifetime (≥ 2 means at
    /// least one *re*-connect).
    #[must_use]
    pub fn sessions(&self) -> u64 {
        self.sessions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_and_cap() {
        let mut b = Backoff::new(BackoffConfig {
            base_ms: 10,
            cap_ms: 80,
            seed: 1,
        });
        // window sequence: 10, 20, 40, 80, 80, ... and each delay is in
        // [window/2, window]
        for &window in &[10u64, 20, 40, 80, 80, 80] {
            let d = b.next_delay_ms();
            assert!(
                (window / 2..=window).contains(&d),
                "delay {d} outside [{}, {window}]",
                window / 2
            );
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = BackoffConfig {
            base_ms: 7,
            cap_ms: 500,
            seed: 42,
        };
        let a: Vec<u64> = {
            let mut b = Backoff::new(cfg);
            (0..10).map(|_| b.next_delay_ms()).collect()
        };
        let b2: Vec<u64> = {
            let mut b = Backoff::new(cfg);
            (0..10).map(|_| b.next_delay_ms()).collect()
        };
        assert_eq!(a, b2);
        let other: Vec<u64> = {
            let mut b = Backoff::new(BackoffConfig { seed: 43, ..cfg });
            (0..10).map(|_| b.next_delay_ms()).collect()
        };
        assert_ne!(a, other, "different seeds should jitter differently");
    }

    #[test]
    fn reset_restarts_the_window() {
        let mut b = Backoff::new(BackoffConfig {
            base_ms: 16,
            cap_ms: 1_000,
            seed: 9,
        });
        for _ in 0..5 {
            b.next_delay_ms();
        }
        b.reset();
        let d = b.next_delay_ms();
        assert!(
            (8..=16).contains(&d),
            "post-reset delay {d} not in first window"
        );
    }

    #[test]
    fn supervisor_lifecycle_under_manual_clock() {
        let mut sup = Supervisor::new(BackoffConfig {
            base_ms: 10,
            cap_ms: 40,
            seed: 5,
        });
        // first dial is due immediately, and Probing holds the half-open
        // slot: due() must be false until the probe resolves
        assert!(sup.due(0));
        sup.begin_probe();
        assert!(!sup.due(u64::MAX), "no second dial while one is in flight");

        // a run of failures walks the capped backoff window
        let mut now = 0;
        let mut last_gap = 0;
        for _ in 0..6 {
            let retry_at = sup.on_failure(now);
            let gap = retry_at - now;
            assert!(gap <= 40, "gap {gap} above cap");
            assert!(!sup.due(retry_at - 1), "dial allowed before retry_at");
            assert!(sup.due(retry_at));
            now = retry_at;
            sup.begin_probe();
            last_gap = gap;
        }
        assert!(last_gap >= 20, "capped window should reach [cap/2, cap]");

        // success reports the outage's attempt count and resets the window
        let attempts = sup.on_established(3);
        assert_eq!(attempts, 7, "6 failed probes + the successful one");
        assert_eq!(sup.state(), LinkState::Connected { epoch: 3 });
        assert_eq!(sup.sessions(), 1);
        let retry_at = sup.on_failure(1_000);
        assert!(
            retry_at - 1_000 <= 10,
            "post-success backoff restarts at the first window"
        );

        // fencing is terminal: never due again
        sup.on_fenced(3);
        assert_eq!(sup.state(), LinkState::Fenced { epoch: 3 });
        assert!(!sup.due(u64::MAX));
    }
}
