//! Deadline-bounded socket I/O — the **only** file in oml-runtime allowed
//! to call raw `connect`/`accept`/`write`.
//!
//! PR 1 established "no bare `recv()` without a deadline" for channels;
//! this module extends the rule to sockets: every connect, accept and
//! write goes through a wrapper that takes an explicit [`Instant`]
//! deadline and surfaces expiry as [`io::ErrorKind::TimedOut`] (which the
//! transport layer maps to [`crate::transport::TransportError::Timeout`]
//! and the protocol layer to [`crate::RuntimeError::Timeout`]). The
//! `transport_deadlines` source-scan test fails the build if a raw call
//! site appears anywhere else in the crate.
//!
//! Both address families behind one enum: Unix-domain sockets (the chaos
//! harness default — no ports to leak between CI runs) and TCP loopback
//! (the same code path a real deployment would use).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Where a transport endpoint listens or dials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportAddr {
    /// A Unix-domain stream socket at this filesystem path.
    Unix(PathBuf),
    /// A TCP socket (e.g. `127.0.0.1:0` to bind an ephemeral port).
    Tcp(String),
}

impl std::fmt::Display for TransportAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportAddr::Unix(p) => write!(f, "unix:{}", p.display()),
            TransportAddr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

impl TransportAddr {
    /// Parses the `unix:<path>` / `tcp:<host:port>` rendering of
    /// [`Display`](std::fmt::Display) — how worker processes receive the
    /// coordinator's address via the environment.
    ///
    /// # Errors
    /// [`io::ErrorKind::InvalidInput`] on an unknown scheme.
    pub fn parse(s: &str) -> io::Result<Self> {
        if let Some(path) = s.strip_prefix("unix:") {
            Ok(TransportAddr::Unix(PathBuf::from(path)))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            Ok(TransportAddr::Tcp(addr.to_owned()))
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown transport address scheme: {s}"),
            ))
        }
    }
}

/// A connected stream of either family.
#[derive(Debug)]
pub enum Stream {
    /// Unix-domain connection.
    Unix(UnixStream),
    /// TCP connection.
    Tcp(TcpStream),
}

impl Stream {
    /// An independently owned handle to the same connection (for the
    /// reader/writer thread split).
    pub fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    /// Bounds every subsequent blocking `read` on this handle.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    /// Half-closes both directions, unblocking any reader.
    pub fn shutdown_both(&self) {
        match self {
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// One blocking `read` under the handle's read timeout. `Ok(0)` is EOF.
    /// `WouldBlock`/`TimedOut` are normalized to `Ok(None)`-style:
    /// returned as `Err(TimedOut)` so callers distinguish EOF from stall.
    pub fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let r = match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        };
        match r {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                Err(io::Error::new(io::ErrorKind::TimedOut, "read timed out"))
            }
            other => other,
        }
    }
}

/// A bound listener of either family. Dropping a Unix listener removes its
/// socket file.
#[derive(Debug)]
pub enum Listener {
    /// Unix-domain listener plus its path (unlinked on drop).
    Unix(UnixListener, PathBuf),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Listener {
    /// Binds `addr`, in non-blocking mode so accepts can poll a shutdown
    /// flag. A pre-existing Unix socket file is unlinked first (stale from
    /// a SIGKILLed predecessor).
    pub fn bind(addr: &TransportAddr) -> io::Result<Listener> {
        match addr {
            TransportAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Unix(l, path.clone()))
            }
            TransportAddr::Tcp(spec) => {
                let l = TcpListener::bind(spec.as_str())?;
                l.set_nonblocking(true)?;
                Ok(Listener::Tcp(l))
            }
        }
    }

    /// The bound address — resolves `:0` TCP binds to the actual port.
    pub fn local_addr(&self) -> io::Result<TransportAddr> {
        Ok(match self {
            Listener::Unix(_, path) => TransportAddr::Unix(path.clone()),
            Listener::Tcp(l) => TransportAddr::Tcp(l.local_addr()?.to_string()),
        })
    }

    /// Accepts one connection, polling until `deadline`. The accepted
    /// stream is switched back to blocking mode (reads are then bounded
    /// per-handle by `set_read_timeout`).
    ///
    /// # Errors
    /// [`io::ErrorKind::TimedOut`] if nothing arrived by `deadline`.
    pub fn accept_deadline(&self, deadline: Instant) -> io::Result<Stream> {
        loop {
            let r = match self {
                Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
                Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            };
            match r {
                Ok(stream) => {
                    match &stream {
                        Stream::Unix(s) => s.set_nonblocking(false)?,
                        Stream::Tcp(s) => s.set_nonblocking(false)?,
                    }
                    return Ok(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(io::ErrorKind::TimedOut, "accept timed out"));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Remaining time until `deadline`, as a timeout error once expired.
fn remaining(deadline: Instant, what: &str) -> io::Result<Duration> {
    let now = Instant::now();
    if now >= deadline {
        return Err(io::Error::new(
            io::ErrorKind::TimedOut,
            format!("{what} deadline expired"),
        ));
    }
    Ok(deadline - now)
}

/// Dials `addr`, giving up at `deadline`.
///
/// TCP uses the kernel's `connect_timeout`. A Unix-domain connect has no
/// kernel timeout in std, but it also cannot hang like a TCP SYN into a
/// black hole: it fails fast unless the listener's backlog is full, so the
/// bounded retry loop below (connect, sleep 1ms, re-check deadline)
/// converts "backlog momentarily full" into a wait and everything else
/// into an immediate error.
///
/// # Errors
/// [`io::ErrorKind::TimedOut`] at deadline expiry; the underlying error
/// otherwise (e.g. `ConnectionRefused` while the peer is down).
pub fn connect_deadline(addr: &TransportAddr, deadline: Instant) -> io::Result<Stream> {
    match addr {
        TransportAddr::Tcp(spec) => {
            let timeout = remaining(deadline, "connect")?;
            let sock: SocketAddr = spec
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable addr"))?;
            let s = TcpStream::connect_timeout(&sock, timeout)?;
            s.set_nodelay(true)?;
            Ok(Stream::Tcp(s))
        }
        TransportAddr::Unix(path) => loop {
            remaining(deadline, "connect")?;
            match UnixStream::connect(path) {
                Ok(s) => return Ok(Stream::Unix(s)),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::Interrupted =>
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
        },
    }
}

/// Writes all of `buf`, giving up at `deadline`. The stream's kernel write
/// timeout is re-armed with the remaining budget before every attempt, so
/// a stalled peer (full socket buffer — e.g. the fault proxy's `Stall`)
/// surfaces as `TimedOut` instead of blocking the writer thread forever.
///
/// # Errors
/// [`io::ErrorKind::TimedOut`] at deadline expiry (the peer may have
/// received a prefix — the connection must be dropped); other I/O errors
/// as-is.
pub fn write_all_deadline(
    stream: &mut Stream,
    mut buf: &[u8],
    deadline: Instant,
) -> io::Result<()> {
    while !buf.is_empty() {
        let budget = remaining(deadline, "write")?;
        let n = match stream {
            Stream::Unix(s) => {
                s.set_write_timeout(Some(budget))?;
                s.write(buf)
            }
            Stream::Tcp(s) => {
                s.set_write_timeout(Some(budget))?;
                s.write(buf)
            }
        };
        match n {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "connection closed mid-write",
                ))
            }
            Ok(written) => buf = &buf[written..],
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                // loop re-checks the deadline and re-arms the timeout
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_display_parse_round_trip() {
        for addr in [
            TransportAddr::Unix(PathBuf::from("/tmp/x.sock")),
            TransportAddr::Tcp("127.0.0.1:9000".into()),
        ] {
            assert_eq!(TransportAddr::parse(&addr.to_string()).unwrap(), addr);
        }
        assert!(TransportAddr::parse("carrier-pigeon:coop7").is_err());
    }

    #[test]
    fn connect_to_nobody_fails_fast_not_forever() {
        let addr = TransportAddr::Unix(std::env::temp_dir().join("oml-netio-nobody.sock"));
        let start = Instant::now();
        let r = connect_deadline(&addr, start + Duration::from_millis(200));
        assert!(r.is_err());
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "unix connect to a missing socket must not hang"
        );
    }

    #[test]
    fn accept_deadline_times_out() {
        let dir = std::env::temp_dir().join(format!("oml-netio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let addr = TransportAddr::Unix(dir.join("t.sock"));
        let l = Listener::bind(&addr).unwrap();
        let err = l
            .accept_deadline(Instant::now() + Duration::from_millis(30))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        drop(l);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tcp_round_trip_under_deadlines() {
        let l = Listener::bind(&TransportAddr::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = l.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut s = l
                .accept_deadline(Instant::now() + Duration::from_secs(5))
                .unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut buf = [0u8; 5];
            let n = s.read_chunk(&mut buf).unwrap();
            buf[..n].to_vec()
        });
        let mut c = connect_deadline(&addr, Instant::now() + Duration::from_secs(5)).unwrap();
        write_all_deadline(&mut c, b"ping!", Instant::now() + Duration::from_secs(5)).unwrap();
        assert_eq!(t.join().unwrap(), b"ping!");
    }
}
