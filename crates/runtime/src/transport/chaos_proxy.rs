//! A socket-level fault proxy: sits between a [`super::socket::SocketPeer`]
//! and its server and mistreats live connections on a **deterministic
//! per-link schedule**, the wire-level analogue of [`crate::FaultPlan`].
//!
//! The proxy forwards traffic chunk-by-chunk; for every chunk it hashes
//! `(seed, connection, direction, chunk index)` — SplitMix64, the same
//! per-decision hashing the fault injector uses — into one of:
//!
//! * **Forward** — pass the chunk through (the common case),
//! * **Drop** — discard the chunk. Length-prefixed framing downstream now
//!   sees a hole: either a stalled frame (missing suffix) or a checksum
//!   mismatch, both of which must kill the session and trigger reconnect,
//! * **Close** — hard-close both directions mid-stream,
//! * **Stall** — sleep before forwarding, exercising write deadlines and
//!   heartbeat-driven suspicion,
//! * **Split** — forward the chunk in single-byte writes, exercising the
//!   incremental decoder's partial-frame paths on a real wire.
//!
//! Determinism means a chaos test that fails replays identically from its
//! seed, like every other fault schedule in this workspace.

use super::netio::{connect_deadline, write_all_deadline, Listener, Stream, TransportAddr};
use parking_lot::Mutex;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What the proxy does with one forwarded chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyAction {
    /// Pass through unchanged.
    Forward,
    /// Discard the chunk (downstream framing breaks).
    Drop,
    /// Hard-close the connection.
    Close,
    /// Sleep `stall_ms` before forwarding.
    Stall,
    /// Forward in single-byte writes.
    Split,
}

/// A deterministic per-chunk fault schedule, built like
/// [`crate::FaultPlan`]: a seed plus probability knobs, each decision a
/// pure hash of its coordinates.
#[derive(Debug, Clone, Copy)]
pub struct ProxyPlan {
    seed: u64,
    drop_p: f64,
    close_p: f64,
    stall_p: f64,
    split_p: f64,
    /// How long a stalled chunk sleeps.
    stall_ms: u64,
}

impl ProxyPlan {
    /// A fault-free plan under `seed`; add faults with the builder knobs.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        ProxyPlan {
            seed,
            drop_p: 0.0,
            close_p: 0.0,
            stall_p: 0.0,
            split_p: 0.0,
            stall_ms: 50,
        }
    }

    /// Probability a chunk is discarded.
    #[must_use]
    pub fn drop_chunks(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// Probability the connection is hard-closed at a chunk boundary.
    #[must_use]
    pub fn close_connections(mut self, p: f64) -> Self {
        self.close_p = p;
        self
    }

    /// Probability a chunk stalls for `ms` before forwarding.
    #[must_use]
    pub fn stall(mut self, p: f64, ms: u64) -> Self {
        self.stall_p = p;
        self.stall_ms = ms;
        self
    }

    /// Probability a chunk is forwarded byte-at-a-time.
    #[must_use]
    pub fn split_writes(mut self, p: f64) -> Self {
        self.split_p = p;
        self
    }

    /// The stall duration this plan applies.
    #[must_use]
    pub fn stall_duration(&self) -> Duration {
        Duration::from_millis(self.stall_ms)
    }

    /// The deterministic decision for chunk `chunk` of direction `dir`
    /// (0 = client→server, 1 = server→client) on connection `conn`.
    #[must_use]
    pub fn decide(&self, conn: u64, dir: u8, chunk: u64) -> ProxyAction {
        let mut h = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(conn)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(u64::from(dir))
            .wrapping_mul(0x94D0_49BB_1331_11EB)
            .wrapping_add(chunk);
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let mut edge = self.close_p;
        if u < edge {
            return ProxyAction::Close;
        }
        edge += self.drop_p;
        if u < edge {
            return ProxyAction::Drop;
        }
        edge += self.stall_p;
        if u < edge {
            return ProxyAction::Stall;
        }
        edge += self.split_p;
        if u < edge {
            return ProxyAction::Split;
        }
        ProxyAction::Forward
    }
}

struct ProxyShared {
    plan: ProxyPlan,
    upstream: TransportAddr,
    closed: AtomicBool,
    conn_counter: AtomicU64,
    /// Live forwarded streams, for [`FaultProxy::sever_all`].
    live: Mutex<Vec<Stream>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// The running proxy: listens on one address, forwards every accepted
/// connection to `upstream` under the plan's schedule.
pub struct FaultProxy {
    inner: Arc<ProxyShared>,
    addr: TransportAddr,
}

impl FaultProxy {
    /// Starts proxying `listen` → `upstream`. Returns the resolved listen
    /// address (hand it to the peer in place of the server's).
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn start(
        listen: &TransportAddr,
        upstream: TransportAddr,
        plan: ProxyPlan,
    ) -> io::Result<FaultProxy> {
        let listener = Listener::bind(listen)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(ProxyShared {
            plan,
            upstream,
            closed: AtomicBool::new(false),
            conn_counter: AtomicU64::new(0),
            live: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
        });
        let a_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("oml-proxy-accept".into())
            .spawn(move || proxy_accept_loop(&a_inner, &listener))
            .expect("spawn proxy accept thread");
        inner.threads.lock().push(handle);
        Ok(FaultProxy { inner, addr })
    }

    /// Where the proxy listens.
    #[must_use]
    pub fn addr(&self) -> &TransportAddr {
        &self.addr
    }

    /// Hard-closes every live forwarded connection (an induced network
    /// blip; the proxy keeps accepting, so reconnects succeed).
    pub fn sever_all(&self) {
        let mut live = self.inner.live.lock();
        for s in live.drain(..) {
            s.shutdown_both();
        }
    }

    /// Connections accepted so far.
    #[must_use]
    pub fn connections(&self) -> u64 {
        self.inner.conn_counter.load(Ordering::Acquire)
    }

    /// Stops accepting, severs everything, joins the pump threads.
    pub fn shutdown(&self) {
        self.inner.closed.store(true, Ordering::Release);
        self.sever_all();
        let handles: Vec<_> = self.inner.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn proxy_accept_loop(inner: &Arc<ProxyShared>, listener: &Listener) {
    while !inner.closed.load(Ordering::Acquire) {
        let deadline = Instant::now() + Duration::from_millis(50);
        let downstream = match listener.accept_deadline(deadline) {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => continue,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        let Ok(upstream) =
            connect_deadline(&inner.upstream, Instant::now() + Duration::from_secs(1))
        else {
            downstream.shutdown_both();
            continue;
        };
        let conn = inner.conn_counter.fetch_add(1, Ordering::AcqRel);
        // one pump per direction; clones register for sever_all
        let pairs = [
            (downstream.try_clone(), upstream.try_clone(), 0u8),
            (upstream.try_clone(), downstream.try_clone(), 1u8),
        ];
        {
            let mut live = inner.live.lock();
            if let (Ok(a), Ok(b)) = (downstream.try_clone(), upstream.try_clone()) {
                live.push(a);
                live.push(b);
            }
        }
        for (src, dst, dir) in pairs {
            let (Ok(src), Ok(dst)) = (src, dst) else {
                downstream.shutdown_both();
                upstream.shutdown_both();
                break;
            };
            let p_inner = Arc::clone(inner);
            let handle = std::thread::Builder::new()
                .name(format!("oml-proxy-pump-{conn}-{dir}"))
                .spawn(move || pump(&p_inner, conn, dir, src, dst))
                .expect("spawn proxy pump");
            inner.threads.lock().push(handle);
        }
    }
}

/// Forwards `src` → `dst` one chunk at a time under the plan's schedule.
fn pump(inner: &Arc<ProxyShared>, conn: u64, dir: u8, mut src: Stream, mut dst: Stream) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 8 * 1024];
    let mut chunk_idx: u64 = 0;
    loop {
        if inner.closed.load(Ordering::Acquire) {
            break;
        }
        let n = match src.read_chunk(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => continue,
            Err(_) => break,
        };
        let action = inner.plan.decide(conn, dir, chunk_idx);
        chunk_idx += 1;
        let deadline = Instant::now() + Duration::from_secs(2);
        let outcome = match action {
            ProxyAction::Drop => Ok(()),
            ProxyAction::Close => {
                src.shutdown_both();
                dst.shutdown_both();
                break;
            }
            ProxyAction::Stall => {
                std::thread::sleep(inner.plan.stall_duration());
                write_all_deadline(&mut dst, &buf[..n], deadline)
            }
            ProxyAction::Split => {
                let mut r = Ok(());
                for b in &buf[..n] {
                    r = write_all_deadline(&mut dst, std::slice::from_ref(b), deadline);
                    if r.is_err() {
                        break;
                    }
                }
                r
            }
            ProxyAction::Forward => write_all_deadline(&mut dst, &buf[..n], deadline),
        };
        if outcome.is_err() {
            break;
        }
    }
    src.shutdown_both();
    dst.shutdown_both();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan = ProxyPlan::seeded(7)
            .drop_chunks(0.2)
            .close_connections(0.05)
            .stall(0.1, 20)
            .split_writes(0.2);
        let a: Vec<ProxyAction> = (0..64).map(|i| plan.decide(1, 0, i)).collect();
        let b: Vec<ProxyAction> = (0..64).map(|i| plan.decide(1, 0, i)).collect();
        assert_eq!(a, b, "same coordinates, same decisions");
        let other_seed = ProxyPlan::seeded(8)
            .drop_chunks(0.2)
            .close_connections(0.05)
            .stall(0.1, 20)
            .split_writes(0.2);
        let c: Vec<ProxyAction> = (0..64).map(|i| other_seed.decide(1, 0, i)).collect();
        assert_ne!(a, c, "different seed, different schedule");
        // directions draw independent decisions
        let d: Vec<ProxyAction> = (0..64).map(|i| plan.decide(1, 1, i)).collect();
        assert_ne!(a, d);
    }

    #[test]
    fn fault_free_plan_always_forwards() {
        let plan = ProxyPlan::seeded(3);
        for i in 0..256 {
            assert_eq!(plan.decide(0, 0, i), ProxyAction::Forward);
        }
    }

    #[test]
    fn probabilities_roughly_honoured() {
        let plan = ProxyPlan::seeded(11).drop_chunks(0.5);
        let drops = (0..2_000)
            .filter(|&i| plan.decide(2, 0, i) == ProxyAction::Drop)
            .count();
        assert!(
            (800..1_200).contains(&drops),
            "≈50% of chunks should drop, got {drops}/2000"
        );
    }
}
