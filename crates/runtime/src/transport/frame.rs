//! Length-prefixed stream framing with corruption rejection.
//!
//! A stream socket is just bytes; this module turns it into the same
//! discrete-envelope world the channel mesh provides. Each frame is
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! where `crc` is the CRC-32 (IEEE, reflected) of the payload. The decoder
//! is **incremental**: feed it arbitrary chunks (a stalled proxy may
//! deliver one byte at a time, a batch write may deliver ten frames at
//! once) and pop complete frames as they materialize. Truncation is
//! therefore not an error — it is the steady state between reads — but
//! *corruption* is terminal for the connection:
//!
//! * a length above [`FrameConfig::max_frame`] (a corrupt or hostile
//!   prefix would otherwise make us allocate gigabytes), and
//! * a payload whose CRC disagrees with the header
//!
//! both yield a [`FrameError`], and the socket layer drops the connection
//! (the supervisor reconnects; the session handshake restores a clean
//! frame boundary). Resynchronizing inside a corrupt stream is not
//! attempted — there is no reliable resync point in a length-prefixed
//! format.

use bytes::Bytes;

/// Frame header size: `len` + `crc`, both `u32` little-endian.
pub const HEADER_LEN: usize = 8;

/// Framing limits. Separate from the socket config so the decoder can be
/// tested (and property-tested) without any socket.
#[derive(Debug, Clone, Copy)]
pub struct FrameConfig {
    /// Largest accepted payload, in bytes. Defaults to 4 MiB — a migration
    /// carries one object's linearized state, not bulk data.
    pub max_frame: u32,
}

impl Default for FrameConfig {
    fn default() -> Self {
        FrameConfig { max_frame: 4 << 20 }
    }
}

/// A framing-level protocol violation. Always terminal for the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The header announced a payload larger than [`FrameConfig::max_frame`].
    TooLarge {
        /// The announced length.
        len: u32,
        /// The configured cap.
        max: u32,
    },
    /// The payload's CRC-32 disagreed with the header.
    Corrupt {
        /// CRC the header promised.
        expected: u32,
        /// CRC the payload actually hashes to.
        got: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
            FrameError::Corrupt { expected, got } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expected:#010x}, payload {got:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) of `data`.
/// Table-driven; the table is built in a `const` so the hot path is one
/// lookup per byte.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Appends one framed payload to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    out.reserve(HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Appends a batch of framed payloads to `out` — what the writer thread
/// does to coalesce a drained queue into one `write` syscall.
pub fn encode_batch<'a, I: IntoIterator<Item = &'a [u8]>>(payloads: I, out: &mut Vec<u8>) {
    for p in payloads {
        encode_frame(p, out);
    }
}

/// Incremental frame decoder: buffer bytes with [`extend`](Self::extend),
/// pop frames with [`next_frame`](Self::next_frame).
#[derive(Debug)]
pub struct FrameDecoder {
    cfg: FrameConfig,
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily so feeding one byte at a
    /// time stays O(n) amortized.
    read: usize,
}

impl FrameDecoder {
    /// A decoder enforcing `cfg`'s limits.
    #[must_use]
    pub fn new(cfg: FrameConfig) -> Self {
        FrameDecoder {
            cfg,
            buf: Vec::new(),
            read: 0,
        }
    }

    /// Buffers another chunk read from the stream.
    pub fn extend(&mut self, chunk: &[u8]) {
        // compact before growing: everything before `read` is dead
        if self.read > 0 && (self.read == self.buf.len() || self.read > 4096) {
            self.buf.drain(..self.read);
            self.read = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet decoded into a frame.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.read
    }

    /// Pops the next complete frame, `Ok(None)` if more bytes are needed.
    ///
    /// # Errors
    /// [`FrameError`] on an oversized length prefix or checksum mismatch;
    /// the decoder (and the connection) must be discarded afterwards.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        let avail = &self.buf[self.read..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        let expected = u32::from_le_bytes([avail[4], avail[5], avail[6], avail[7]]);
        if len > self.cfg.max_frame {
            return Err(FrameError::TooLarge {
                len,
                max: self.cfg.max_frame,
            });
        }
        let total = HEADER_LEN + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = &avail[HEADER_LEN..total];
        let got = crc32(payload);
        if got != expected {
            return Err(FrameError::Corrupt { expected, got });
        }
        let frame = Bytes::copy_from_slice(payload);
        self.read += total;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_a_frame() {
        let mut wire = Vec::new();
        encode_frame(b"hello", &mut wire);
        let mut dec = FrameDecoder::new(FrameConfig::default());
        dec.extend(&wire);
        let frame = dec.next_frame().unwrap().unwrap();
        assert_eq!(&frame[..], b"hello");
        assert!(dec.next_frame().unwrap().is_none());
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let mut wire = Vec::new();
        encode_frame(b"", &mut wire);
        let mut dec = FrameDecoder::new(FrameConfig::default());
        dec.extend(&wire);
        assert_eq!(&dec.next_frame().unwrap().unwrap()[..], b"");
    }

    #[test]
    fn oversized_length_is_rejected_before_payload_arrives() {
        let mut dec = FrameDecoder::new(FrameConfig { max_frame: 16 });
        let mut wire = Vec::new();
        wire.extend_from_slice(&17u32.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        dec.extend(&wire);
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::TooLarge { len: 17, max: 16 })
        );
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let mut wire = Vec::new();
        encode_frame(b"payload", &mut wire);
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        let mut dec = FrameDecoder::new(FrameConfig::default());
        dec.extend(&wire);
        assert!(matches!(dec.next_frame(), Err(FrameError::Corrupt { .. })));
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let mut wire = Vec::new();
        encode_batch([b"one".as_slice(), b"two".as_slice()], &mut wire);
        let mut dec = FrameDecoder::new(FrameConfig::default());
        let mut got = Vec::new();
        for b in wire {
            dec.extend(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f.to_vec());
            }
        }
        assert_eq!(got, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn errors_display() {
        assert_eq!(
            FrameError::TooLarge { len: 9, max: 8 }.to_string(),
            "frame length 9 exceeds cap 8"
        );
        assert!(FrameError::Corrupt {
            expected: 1,
            got: 2
        }
        .to_string()
        .contains("checksum mismatch"));
    }
}
