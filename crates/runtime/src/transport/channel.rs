//! The in-process transport: a mesh of **bounded** crossbeam channels.
//!
//! This is the wire the [`crate::Cluster`] has always run on, refactored
//! behind [`Transport`] with one behavioural change: per-node inboxes are
//! now bounded (PR 9 satellite — no unbounded channels left in the
//! runtime). Messages pass by ownership, so this transport carries the
//! full in-memory envelope type and the fault injector keeps operating on
//! envelopes, not bytes — bit-compatible with the pre-trait behaviour.
//!
//! # Backpressure policy (documented per path)
//!
//! * **Node inboxes** (this mesh): bounded at [`MeshConfig::capacity`].
//!   Senders *block* up to [`MeshConfig::send_deadline_ms`], then fail
//!   with [`TransportError::Backpressure`]. Blocking (rather than
//!   dropping) preserves the delivery guarantees the protocol tests pin;
//!   the deadline keeps a wedged worker from propagating an unbounded
//!   stall. The capacity default (4096) is ~70× the deepest queue any
//!   chaos schedule in the suite produces.
//! * **Reply channels** (created per call in `cluster.rs`): stay
//!   `bounded(1)` + `try_send` fail-fast — a reply past its caller's
//!   deadline is dropped, never blocks a worker (PR 4 decision, unchanged).
//! * **Delayed-delivery threads** (fault injector): clone a [`Sender`] and
//!   block on it like any sender; a full inbox delays the delivery
//!   further, which is indistinguishable from more network delay.

use super::{LinkHealth, Transport, TransportError, TransportEvent};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Sender identity reported by mesh deliveries: the mesh does not
/// authenticate senders (they share an address space); identity travels
/// inside the envelope.
pub const MESH_ANON: u32 = u32::MAX;

/// Tuning for a [`ChannelMesh`].
#[derive(Debug, Clone, Copy)]
pub struct MeshConfig {
    /// Per-node inbox capacity (messages).
    pub capacity: usize,
    /// How long a sender may block on a full inbox before
    /// [`TransportError::Backpressure`].
    pub send_deadline_ms: u64,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            capacity: 4096,
            send_deadline_ms: 2_000,
        }
    }
}

/// A full mesh of bounded in-process channels: endpoint `i`'s inbox is
/// channel `i`; any holder may send to any endpoint.
#[derive(Debug)]
pub struct ChannelMesh<M> {
    txs: Vec<Sender<M>>,
    rxs: Vec<Receiver<M>>,
    cfg: MeshConfig,
    closed: AtomicBool,
}

impl<M: Send> ChannelMesh<M> {
    /// A mesh of `n` endpoints under `cfg`.
    #[must_use]
    pub fn new(n: u32, cfg: MeshConfig) -> Self {
        let mut txs = Vec::with_capacity(n as usize);
        let mut rxs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let (tx, rx) = bounded(cfg.capacity);
            txs.push(tx);
            rxs.push(rx);
        }
        ChannelMesh {
            txs,
            rxs,
            cfg,
            closed: AtomicBool::new(false),
        }
    }

    /// A clone of the raw sender towards `to` — for the fault injector's
    /// delayed-delivery threads, which outlive the caller's borrow.
    #[must_use]
    pub fn sender(&self, to: u32) -> Sender<M> {
        self.txs[to as usize].clone()
    }

    /// A clone of endpoint `at`'s inbox receiver — the worker fast path
    /// (workers drain their own inbox directly; queued messages survive a
    /// worker crash/restart because the channel does).
    #[must_use]
    pub fn endpoint(&self, at: u32) -> Receiver<M> {
        self.rxs[at as usize].clone()
    }

    /// Messages currently queued at endpoint `at` (diagnostics).
    #[must_use]
    pub fn queued(&self, at: u32) -> usize {
        self.rxs[at as usize].len()
    }
}

impl<M: Send> Transport<M> for ChannelMesh<M> {
    fn peers(&self) -> u32 {
        self.txs.len() as u32
    }

    fn send(&self, to: u32, msg: M) -> Result<(), TransportError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        let Some(tx) = self.txs.get(to as usize) else {
            return Err(TransportError::Down { peer: to });
        };
        // block-with-deadline: try, then poll; the shim has no
        // send_timeout and the full-inbox case is the rare edge
        let deadline = Instant::now() + Duration::from_millis(self.cfg.send_deadline_ms);
        let mut msg = msg;
        loop {
            match tx.try_send(msg) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(_)) => return Err(TransportError::Closed),
                Err(TrySendError::Full(back)) => {
                    if Instant::now() >= deadline {
                        return Err(TransportError::Backpressure {
                            waited_ms: self.cfg.send_deadline_ms,
                        });
                    }
                    msg = back;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }

    fn recv_timeout(
        &self,
        at: u32,
        timeout: Duration,
    ) -> Result<TransportEvent<M>, TransportError> {
        let Some(rx) = self.rxs.get(at as usize) else {
            return Err(TransportError::Closed);
        };
        match rx.recv_timeout(timeout) {
            Ok(msg) => Ok(TransportEvent::Delivery {
                from: MESH_ANON,
                epoch: 0,
                msg,
            }),
            Err(_) if self.closed.load(Ordering::Acquire) => Err(TransportError::Closed),
            Err(_) => Err(TransportError::Timeout {
                waited_ms: timeout.as_millis() as u64,
            }),
        }
    }

    fn link_health(&self, to: u32) -> LinkHealth {
        if self.closed.load(Ordering::Acquire) || to as usize >= self.txs.len() {
            LinkHealth::Down
        } else {
            LinkHealth::Up
        }
    }

    fn shutdown(&self) {
        self.closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_between_endpoints() {
        let mesh: ChannelMesh<u64> = ChannelMesh::new(2, MeshConfig::default());
        mesh.send(1, 77).unwrap();
        match mesh.recv_timeout(1, Duration::from_millis(100)).unwrap() {
            TransportEvent::Delivery { from, epoch, msg } => {
                assert_eq!((from, epoch, msg), (MESH_ANON, 0, 77));
            }
            other => panic!("unexpected event: {other:?}"),
        }
    }

    #[test]
    fn full_inbox_fails_with_backpressure_not_forever() {
        let mesh: ChannelMesh<u64> = ChannelMesh::new(
            1,
            MeshConfig {
                capacity: 2,
                send_deadline_ms: 30,
            },
        );
        mesh.send(0, 1).unwrap();
        mesh.send(0, 2).unwrap();
        let start = Instant::now();
        let err = mesh.send(0, 3).unwrap_err();
        assert!(matches!(err, TransportError::Backpressure { .. }), "{err}");
        assert!(start.elapsed() < Duration::from_secs(2));
        // draining frees capacity again
        let _ = mesh.recv_timeout(0, Duration::from_millis(50)).unwrap();
        mesh.send(0, 3).unwrap();
    }

    #[test]
    fn recv_times_out_and_close_is_observed() {
        let mesh: ChannelMesh<u64> = ChannelMesh::new(1, MeshConfig::default());
        let err = mesh.recv_timeout(0, Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, TransportError::Timeout { .. }));
        mesh.shutdown();
        assert!(matches!(mesh.send(0, 9), Err(TransportError::Closed)));
        assert_eq!(mesh.link_health(0), LinkHealth::Down);
    }

    #[test]
    fn out_of_range_peer_is_down() {
        let mesh: ChannelMesh<u64> = ChannelMesh::new(1, MeshConfig::default());
        assert!(matches!(
            mesh.send(5, 0),
            Err(TransportError::Down { peer: 5 })
        ));
        assert_eq!(mesh.link_health(0), LinkHealth::Up);
    }
}
