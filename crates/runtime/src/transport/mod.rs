//! Pluggable transports: how envelopes physically travel between nodes.
//!
//! The paper keeps *transmission policy* orthogonal to object
//! implementation (PAPERS.md, "Promoting Component Reuse by Separating
//! Transmission Policy from Implementation"); this module applies the same
//! separation to the runtime itself. Everything above the transport —
//! directory, placement locks, fencing, breakers, checkpoints — speaks in
//! terms of *send to peer N* and *receive the next event*, and the
//! [`Transport`] trait is that seam. Two production implementations exist:
//!
//! * [`channel::ChannelMesh`] — the in-process mesh of crossbeam channels
//!   the [`crate::Cluster`] has always run on, now behind the trait and
//!   with **bounded** per-node inboxes. Messages are passed by ownership,
//!   so this transport carries the full in-memory `Envelope` (live trait
//!   objects, reply channels).
//! * [`socket::SocketServer`] / [`socket::SocketPeer`] — stream sockets
//!   (Unix-domain or TCP) for nodes that are **separate OS processes**.
//!   Payloads must be real bytes here, so this transport carries
//!   [`bytes::Bytes`] framed by [`frame`] and the protocol layer
//!   ([`multiproc`]) does its own linearization via [`crate::wire`].
//!
//! The trait is therefore generic over the message type `M`: the seam is
//! the *topology and delivery contract*, not a serialization format — an
//! in-process mesh would gain nothing (and lose the fault injector's
//! by-reference delivery) from being forced through bytes.
//!
//! # Delivery contract
//!
//! Both implementations promise:
//!
//! * **Per-link FIFO** between two live endpoints (a reconnect starts a new
//!   FIFO era; frames buffered across the gap are re-sent in order, so the
//!   contract is at-least-once, never reordered-within-a-connection).
//! * **Bounded backpressure**: each destination has a bounded outbound
//!   queue. [`Transport::send`] blocks up to the transport's configured
//!   send deadline when the queue is full, then fails with
//!   [`TransportError::Backpressure`] — it never buffers unboundedly and
//!   never blocks forever.
//! * **Fencing at the edge**: the socket transport authenticates every
//!   connection with a `Hello{node, incarnation}` handshake; an
//!   incarnation older than the coordinator's table is refused at accept
//!   time ([`TransportEvent::HandshakeFenced`]) before a single payload
//!   frame is read. The channel mesh delegates fencing to the existing
//!   envelope-epoch checks in [`crate::Cluster`] (same invariant, enforced
//!   one layer up, because in-process "connections" cannot be refused).
//!
//! Deadline handling is centralized in [`netio`]: every connect, accept and
//! write in this module goes through a deadline-carrying wrapper, enforced
//! by the `transport_deadlines` source-scan test (the PR 1 "no bare
//! `recv()`" rule, extended to sockets).

pub mod backoff;
pub mod channel;
pub mod chaos_proxy;
pub mod frame;
pub mod multiproc;
pub mod netio;
pub mod socket;

use bytes::Bytes;
use std::time::Duration;

/// Why a transport operation failed. Maps onto [`crate::RuntimeError`] at
/// the protocol layer: `Timeout`/`Backpressure` become
/// [`crate::RuntimeError::Timeout`], `Down`/`Fenced`/`Closed` become
/// [`crate::RuntimeError::NodeDown`], so circuit breakers open on socket
/// death exactly as they do on simulated death.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The transport (or the addressed link) has been shut down.
    Closed,
    /// The peer's bounded outbound queue stayed full past the send
    /// deadline. The message was **not** enqueued.
    Backpressure {
        /// How long the sender waited for queue space.
        waited_ms: u64,
    },
    /// The link to `peer` is supervised-down (connect/write failures, not
    /// yet reconnected); fail-fast so callers' deadlines stay honest.
    Down {
        /// The unreachable peer.
        peer: u32,
    },
    /// The operation ran past its deadline.
    Timeout {
        /// How long the caller waited.
        waited_ms: u64,
    },
    /// This endpoint's handshake was refused: its incarnation `epoch` is
    /// fenced. Terminal — the owning process must not act again.
    Fenced {
        /// The peer that refused us.
        peer: u32,
        /// The stale incarnation we presented.
        epoch: u64,
    },
    /// An I/O error outside the categories above.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => f.write_str("transport closed"),
            TransportError::Backpressure { waited_ms } => {
                write!(f, "outbound queue full after {waited_ms}ms")
            }
            TransportError::Down { peer } => write!(f, "link to peer {peer} is down"),
            TransportError::Timeout { waited_ms } => {
                write!(f, "transport timeout after {waited_ms}ms")
            }
            TransportError::Fenced { peer, epoch } => {
                write!(f, "fenced by peer {peer}: incarnation {epoch} is stale")
            }
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// One inbound happening at a transport endpoint: a delivered message or a
/// link-state transition. Link events exist so the protocol layer (and the
/// oml-check trace) can observe connection supervision; the in-process
/// mesh never emits them (its links cannot fail independently of a node).
#[derive(Debug)]
pub enum TransportEvent<M> {
    /// A message arrived from `from`, which authenticated as incarnation
    /// `epoch` (0 for transports without handshakes).
    Delivery {
        /// The sending peer's node id.
        from: u32,
        /// The sender's handshake incarnation (0 on the channel mesh).
        epoch: u64,
        /// The message itself.
        msg: M,
    },
    /// A peer's first successful handshake on this transport.
    Connected {
        /// The peer that connected.
        peer: u32,
        /// Its handshake incarnation.
        epoch: u64,
    },
    /// A live connection to `peer` died (EOF, reset, write failure). The
    /// supervisor is now reconnecting under backoff.
    Disconnected {
        /// The peer whose connection dropped.
        peer: u32,
    },
    /// A peer re-established its session after one or more failures.
    Reconnected {
        /// The peer that came back.
        peer: u32,
        /// Its handshake incarnation.
        epoch: u64,
        /// How many dial attempts the reconnect took.
        attempt: u32,
    },
    /// A handshake was **refused**: the peer presented incarnation `epoch`,
    /// older than the freshest this endpoint has fenced. No payload from
    /// that session was or will be delivered.
    HandshakeFenced {
        /// The zombie peer.
        peer: u32,
        /// The stale incarnation it presented.
        epoch: u64,
    },
}

/// Current supervised state of one link, as [`Transport::link_health`]
/// reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkHealth {
    /// Connected (or, on the channel mesh, the peer's inbox exists).
    Up,
    /// Down; the supervisor is retrying under capped backoff.
    Down,
    /// Terminally fenced: this endpoint's incarnation was refused.
    Fenced,
}

/// How envelopes travel. See the [module docs](self) for the delivery
/// contract both implementations honour.
pub trait Transport<M: Send>: Send + Sync {
    /// Number of addressable peers (`0..peers()` are valid `to` values).
    fn peers(&self) -> u32;

    /// Queues `msg` for `to` under bounded backpressure. Blocks at most
    /// the transport's configured send deadline.
    ///
    /// # Errors
    /// [`TransportError::Backpressure`] if the peer's queue stayed full,
    /// [`TransportError::Down`] / [`TransportError::Fenced`] /
    /// [`TransportError::Closed`] per the link's supervised state.
    fn send(&self, to: u32, msg: M) -> Result<(), TransportError>;

    /// Blocks up to `timeout` for the next inbound event at local endpoint
    /// `at`. A mesh transport hosts every endpoint in-process and `at`
    /// selects one; a point-to-point transport (socket peer/server) has a
    /// single local endpoint and ignores `at`.
    ///
    /// # Errors
    /// [`TransportError::Timeout`] when nothing arrived,
    /// [`TransportError::Closed`] after shutdown.
    fn recv_timeout(&self, at: u32, timeout: Duration)
        -> Result<TransportEvent<M>, TransportError>;

    /// The supervised health of the link towards `to`.
    fn link_health(&self, to: u32) -> LinkHealth;

    /// Tears the transport down; subsequent sends fail with
    /// [`TransportError::Closed`].
    fn shutdown(&self);
}

/// A byte-carrying transport — what the multi-process runtime builds on.
/// (Alias so bounds read as intent: `T: ByteTransport`.)
pub trait ByteTransport: Transport<Bytes> {}
impl<T: Transport<Bytes>> ByteTransport for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert_eq!(TransportError::Closed.to_string(), "transport closed");
        assert_eq!(
            TransportError::Backpressure { waited_ms: 7 }.to_string(),
            "outbound queue full after 7ms"
        );
        assert_eq!(
            TransportError::Down { peer: 2 }.to_string(),
            "link to peer 2 is down"
        );
        assert_eq!(
            TransportError::Fenced { peer: 0, epoch: 3 }.to_string(),
            "fenced by peer 0: incarnation 3 is stale"
        );
        assert_eq!(
            TransportError::Timeout { waited_ms: 40 }.to_string(),
            "transport timeout after 40ms"
        );
        assert_eq!(
            TransportError::Io("eof".into()).to_string(),
            "transport i/o error: eof"
        );
    }
}
