//! The stream-socket transport: nodes as separate OS processes over
//! Unix-domain or TCP sockets.
//!
//! Topology is a **star**: the coordinator process runs a
//! [`SocketServer`]; each worker process runs a [`SocketPeer`] dialing it.
//! (The in-process mesh is all-to-all because senders share an address
//! space; across processes the coordinator owns the directory and all
//! protocol traffic relays through it anyway — see
//! [`super::multiproc`].)
//!
//! # Session handshake and fencing
//!
//! The first frame on every connection is `Hello{node, incarnation,
//! attempt}`; the server answers `HelloAck{accepted, floor}`. The server
//! keeps a per-node **epoch floor** — the greatest incarnation it has
//! accepted or been told to fence below ([`SocketServer::fence_below`]) —
//! and refuses any Hello carrying a smaller incarnation *at accept time*,
//! before a single payload frame is read. A SIGKILLed worker's replacement
//! (incarnation bumped) raises the floor, so the old incarnation's
//! reconnect attempts are fenced forever: the zombie cannot deliver even
//! one stale frame. Re-handshakes at the *same* incarnation are idempotent
//! — that is an ordinary reconnect and replaces the session.
//!
//! # Supervision and backpressure
//!
//! Each peer owns one persistent bounded outbound queue and one writer
//! loop. Frames are drained in batches (up to [`SocketConfig::max_batch`]
//! per write syscall), paced by the optional oml-net latency model, and
//! written under a deadline. A failed write keeps the unwritten batch in a
//! pending list, drops the connection, and lets the supervisor
//! ([`super::backoff::Supervisor`]) schedule redials under capped
//! exponential backoff with seeded jitter; the pending frames go out
//! first on the next session (per-link FIFO, at-least-once). Senders block
//! at most [`SocketConfig::send_deadline_ms`] on a full queue, then get
//! [`TransportError::Backpressure`].

use super::backoff::{BackoffConfig, LinkState, Supervisor};
use super::frame::{encode_frame, FrameConfig, FrameDecoder};
use super::netio::{connect_deadline, write_all_deadline, Listener, Stream, TransportAddr};
use super::{LinkHealth, Transport, TransportError, TransportEvent};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use oml_des::SimRng;
use oml_net::LatencyModel;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Outbound pacing: a latency model sampled per batch write, so the
/// socket transport can reproduce the simulator's network-delay
/// distributions on a real wire (transmission policy as configuration,
/// not code).
#[derive(Debug, Clone)]
pub struct Pacing {
    /// The delay distribution; samples are milliseconds.
    pub model: LatencyModel,
    /// Seed for the sampling stream (deterministic per link).
    pub seed: u64,
}

/// Tuning for the socket transport. Every blocking operation is bounded
/// by one of these knobs.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// Dial deadline per connect attempt, ms.
    pub connect_timeout_ms: u64,
    /// Deadline for writing one batch, ms.
    pub write_timeout_ms: u64,
    /// Deadline for the Hello/HelloAck exchange, ms.
    pub handshake_timeout_ms: u64,
    /// How long a sender may block on a full outbound queue, ms.
    pub send_deadline_ms: u64,
    /// Per-peer outbound queue capacity (frames).
    pub outbound_capacity: usize,
    /// Inbound event queue capacity (deliveries + link events).
    pub inbound_capacity: usize,
    /// Most frames coalesced into one write syscall.
    pub max_batch: usize,
    /// Reconnect backoff tuning.
    pub backoff: BackoffConfig,
    /// Framing limits.
    pub frame: FrameConfig,
    /// Optional outbound pacing model.
    pub pacing: Option<Pacing>,
}

impl Default for SocketConfig {
    fn default() -> Self {
        SocketConfig {
            connect_timeout_ms: 1_000,
            write_timeout_ms: 1_000,
            handshake_timeout_ms: 1_000,
            send_deadline_ms: 1_000,
            outbound_capacity: 1_024,
            inbound_capacity: 4_096,
            max_batch: 64,
            backoff: BackoffConfig::default(),
            frame: FrameConfig::default(),
            pacing: None,
        }
    }
}

// ---------------------------------------------------------------------------
// control frames

const TAG_HELLO: u32 = 1;
const TAG_HELLO_ACK: u32 = 2;
const TAG_DATA: u32 = 3;

/// A decoded control/payload frame (crate-visible for proptests).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SessionFrame {
    Hello { node: u32, epoch: u64, attempt: u32 },
    HelloAck { accepted: bool, floor: u64 },
    Data(Vec<u8>),
}

pub(crate) fn encode_session(frame: &SessionFrame) -> Bytes {
    use crate::wire::WireWriter;
    match frame {
        SessionFrame::Hello {
            node,
            epoch,
            attempt,
        } => WireWriter::new()
            .u32(TAG_HELLO)
            .u32(*node)
            .u64(*epoch)
            .u32(*attempt)
            .finish(),
        SessionFrame::HelloAck { accepted, floor } => WireWriter::new()
            .u32(TAG_HELLO_ACK)
            .u32(u32::from(*accepted))
            .u64(*floor)
            .finish(),
        SessionFrame::Data(payload) => WireWriter::new().u32(TAG_DATA).bytes(payload).finish(),
    }
}

pub(crate) fn decode_session(buf: &[u8]) -> Result<SessionFrame, String> {
    use crate::wire::WireReader;
    let mut r = WireReader::new(buf);
    match r.u32()? {
        TAG_HELLO => Ok(SessionFrame::Hello {
            node: r.u32()?,
            epoch: r.u64()?,
            attempt: r.u32()?,
        }),
        TAG_HELLO_ACK => Ok(SessionFrame::HelloAck {
            accepted: r.u32()? != 0,
            floor: r.u64()?,
        }),
        TAG_DATA => Ok(SessionFrame::Data(r.bytes()?)),
        other => Err(format!("unknown session frame tag {other}")),
    }
}

/// Reads framed bytes off `stream` until one whole frame decodes, bounded
/// by `deadline`. Used for the synchronous handshake exchange; steady-state
/// reads live in the reader threads.
fn read_frame_deadline(
    stream: &mut Stream,
    dec: &mut FrameDecoder,
    deadline: Instant,
) -> io::Result<Bytes> {
    let mut buf = [0u8; 4096];
    loop {
        match dec.next_frame() {
            Ok(Some(frame)) => return Ok(frame),
            Ok(None) => {}
            Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "handshake deadline expired",
            ));
        }
        stream.set_read_timeout(Some(deadline - now))?;
        match stream.read_chunk(&mut buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed during handshake",
                ))
            }
            Ok(n) => dec.extend(&buf[..n]),
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
    }
}

fn ms(d: Duration) -> u64 {
    d.as_millis() as u64
}

// ---------------------------------------------------------------------------
// server

/// One connected worker's state at the server.
struct PeerSlot {
    /// Persistent outbound queue towards this peer (survives reconnects).
    outbox: Sender<Bytes>,
    /// Live write half, replaced on every new session. `None` while down.
    stream: Option<Stream>,
    /// Bumped per accepted session; stale readers compare against it.
    generation: u64,
    /// Incarnation the current/last session authenticated as.
    epoch: u64,
    up: bool,
}

struct ServerShared {
    cfg: SocketConfig,
    peers_total: u32,
    events_tx: Sender<TransportEvent<Bytes>>,
    events_rx: Receiver<TransportEvent<Bytes>>,
    /// node id → slot; leaf lock, held only for map/field access.
    slots: Mutex<HashMap<u32, PeerSlot>>,
    /// node id → smallest acceptable incarnation (fencing floor).
    floors: Mutex<HashMap<u32, u64>>,
    closed: AtomicBool,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerShared {
    fn emit(&self, ev: TransportEvent<Bytes>) {
        // inbound queue is bounded; blocking here backpressures readers
        // (and with them the kernel socket buffers), which is the policy
        let _ = self.events_tx.send(ev);
    }
}

/// The coordinator's end of the socket transport: accepts worker sessions,
/// fences stale incarnations at accept time, supervises per-peer writers.
pub struct SocketServer {
    inner: Arc<ServerShared>,
    addr: TransportAddr,
}

impl SocketServer {
    /// Binds `addr` and starts the accept loop. `peers_total` bounds the
    /// valid node-id space. Returns the server and its **resolved**
    /// address (TCP `:0` binds report the real port).
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind(
        addr: &TransportAddr,
        peers_total: u32,
        cfg: SocketConfig,
    ) -> io::Result<SocketServer> {
        let listener = Listener::bind(addr)?;
        let resolved = listener.local_addr()?;
        let (events_tx, events_rx) = bounded(cfg.inbound_capacity);
        let inner = Arc::new(ServerShared {
            cfg,
            peers_total,
            events_tx,
            events_rx,
            slots: Mutex::new(HashMap::new()),
            floors: Mutex::new(HashMap::new()),
            closed: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
        });
        let accept_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("oml-accept".into())
            .spawn(move || accept_loop(&accept_inner, &listener))
            .expect("spawn accept thread");
        inner.threads.lock().push(handle);
        Ok(SocketServer {
            inner,
            addr: resolved,
        })
    }

    /// The resolved listen address — hand this to worker processes.
    #[must_use]
    pub fn addr(&self) -> &TransportAddr {
        &self.addr
    }

    /// Raises `node`'s fencing floor: handshakes presenting an incarnation
    /// `< epoch` are refused from now on. Idempotent; floors only rise.
    pub fn fence_below(&self, node: u32, epoch: u64) {
        let mut floors = self.inner.floors.lock();
        let f = floors.entry(node).or_insert(0);
        *f = (*f).max(epoch);
    }

    /// The incarnation the current session of `node` authenticated as
    /// (`None` before any session).
    #[must_use]
    pub fn session_epoch(&self, node: u32) -> Option<u64> {
        self.inner.slots.lock().get(&node).map(|s| s.epoch)
    }
}

impl Transport<Bytes> for SocketServer {
    fn peers(&self) -> u32 {
        self.inner.peers_total
    }

    fn send(&self, to: u32, msg: Bytes) -> Result<(), TransportError> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        let tx = {
            let slots = self.inner.slots.lock();
            match slots.get(&to) {
                Some(slot) => slot.outbox.clone(),
                None => return Err(TransportError::Down { peer: to }),
            }
        };
        send_with_deadline(&tx, msg, self.inner.cfg.send_deadline_ms)
    }

    fn recv_timeout(
        &self,
        _at: u32,
        timeout: Duration,
    ) -> Result<TransportEvent<Bytes>, TransportError> {
        match self.inner.events_rx.recv_timeout(timeout) {
            Ok(ev) => Ok(ev),
            Err(_) if self.inner.closed.load(Ordering::Acquire) => Err(TransportError::Closed),
            Err(_) => Err(TransportError::Timeout {
                waited_ms: ms(timeout),
            }),
        }
    }

    fn link_health(&self, to: u32) -> LinkHealth {
        let slots = self.inner.slots.lock();
        match slots.get(&to) {
            Some(slot) if slot.up => LinkHealth::Up,
            _ => LinkHealth::Down,
        }
    }

    fn shutdown(&self) {
        self.inner.closed.store(true, Ordering::Release);
        {
            let mut slots = self.inner.slots.lock();
            for slot in slots.values_mut() {
                if let Some(s) = &slot.stream {
                    s.shutdown_both();
                }
                slot.stream = None;
                slot.up = false;
            }
        }
        let handles: Vec<_> = self.inner.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Blocking-with-deadline enqueue shared by server and peer send paths.
fn send_with_deadline(
    tx: &Sender<Bytes>,
    msg: Bytes,
    deadline_ms: u64,
) -> Result<(), TransportError> {
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    let mut msg = msg;
    loop {
        match tx.try_send(msg) {
            Ok(()) => return Ok(()),
            Err(TrySendError::Disconnected(_)) => return Err(TransportError::Closed),
            Err(TrySendError::Full(back)) => {
                if Instant::now() >= deadline {
                    return Err(TransportError::Backpressure {
                        waited_ms: deadline_ms,
                    });
                }
                msg = back;
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

fn accept_loop(inner: &Arc<ServerShared>, listener: &Listener) {
    while !inner.closed.load(Ordering::Acquire) {
        let deadline = Instant::now() + Duration::from_millis(50);
        match listener.accept_deadline(deadline) {
            Ok(stream) => handle_accept(inner, stream),
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
            Err(_) => {
                // bind torn down under us — poll the closed flag
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Runs the server side of the handshake synchronously (bounded by
/// `handshake_timeout_ms`), then installs the session and spawns its
/// reader. A worker that stalls mid-handshake delays only this accept,
/// never established sessions.
fn handle_accept(inner: &Arc<ServerShared>, mut stream: Stream) {
    let deadline = Instant::now() + Duration::from_millis(inner.cfg.handshake_timeout_ms);
    let mut dec = FrameDecoder::new(inner.cfg.frame);
    let hello = match read_frame_deadline(&mut stream, &mut dec, deadline) {
        Ok(frame) => match decode_session(&frame) {
            Ok(SessionFrame::Hello {
                node,
                epoch,
                attempt,
            }) if node < inner.peers_total => (node, epoch, attempt),
            _ => {
                stream.shutdown_both();
                return;
            }
        },
        Err(_) => {
            stream.shutdown_both();
            return;
        }
    };
    let (node, epoch, attempt) = hello;

    let floor = { *inner.floors.lock().entry(node).or_insert(0) };
    let accepted = epoch >= floor;
    let ack = encode_session(&SessionFrame::HelloAck { accepted, floor });
    let mut wire = Vec::new();
    encode_frame(&ack, &mut wire);
    if write_all_deadline(&mut stream, &wire, deadline).is_err() {
        stream.shutdown_both();
        return;
    }
    if !accepted {
        inner.emit(TransportEvent::HandshakeFenced { peer: node, epoch });
        stream.shutdown_both();
        return;
    }

    // accepted: floors only rise, so same-epoch reconnects stay idempotent
    inner
        .floors
        .lock()
        .entry(node)
        .and_modify(|f| *f = (*f).max(epoch));

    let (generation, first_session, read_half) = {
        let mut slots = inner.slots.lock();
        let first = !slots.contains_key(&node);
        let slot = slots.entry(node).or_insert_with(|| {
            let (outbox_tx, outbox_rx) = bounded(inner.cfg.outbound_capacity);
            // per-peer writer loop, started once, lives until shutdown
            let w_inner = Arc::clone(inner);
            let handle = std::thread::Builder::new()
                .name(format!("oml-writer-{node}"))
                .spawn(move || server_writer_loop(&w_inner, node, &outbox_rx))
                .expect("spawn writer thread");
            inner.threads.lock().push(handle);
            PeerSlot {
                outbox: outbox_tx,
                stream: None,
                generation: 0,
                epoch,
                up: false,
            }
        });
        if let Some(old) = &slot.stream {
            old.shutdown_both(); // replaced session: kill the old reader
        }
        slot.generation += 1;
        slot.epoch = epoch;
        slot.up = true;
        let Ok(read_half) = stream.try_clone() else {
            stream.shutdown_both();
            slot.up = false;
            return;
        };
        slot.stream = Some(stream);
        (slot.generation, first, read_half)
    };

    let r_inner = Arc::clone(inner);
    let handle = std::thread::Builder::new()
        .name(format!("oml-reader-{node}"))
        .spawn(move || server_reader_loop(&r_inner, node, epoch, generation, read_half))
        .expect("spawn reader thread");
    inner.threads.lock().push(handle);

    if first_session {
        inner.emit(TransportEvent::Connected { peer: node, epoch });
    } else {
        inner.emit(TransportEvent::Reconnected {
            peer: node,
            epoch,
            attempt,
        });
    }
}

/// Drains `node`'s outbox in batches and writes them to whatever stream
/// the slot currently holds; frames caught in a failed write are retried
/// on the next session.
fn server_writer_loop(inner: &Arc<ServerShared>, node: u32, outbox: &Receiver<Bytes>) {
    let mut pending: VecDeque<Bytes> = VecDeque::new();
    let mut pacer = inner
        .cfg
        .pacing
        .as_ref()
        .map(|p| (p.model, SimRng::seed_from(p.seed ^ u64::from(node))));
    while !inner.closed.load(Ordering::Acquire) {
        // top up the batch from the queue
        if pending.is_empty() {
            match outbox.recv_timeout(Duration::from_millis(20)) {
                Ok(frame) => pending.push_back(frame),
                Err(_) => continue,
            }
        }
        while pending.len() < inner.cfg.max_batch {
            match outbox.try_recv() {
                Ok(frame) => pending.push_back(frame),
                Err(_) => break,
            }
        }
        // grab the current write half, if any
        let (mut stream, generation) = {
            let mut slots = inner.slots.lock();
            match slots.get_mut(&node) {
                Some(slot) if slot.up => match slot.stream.as_ref().map(Stream::try_clone) {
                    Some(Ok(s)) => (s, slot.generation),
                    _ => {
                        slot.up = false;
                        continue;
                    }
                },
                _ => {
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
            }
        };
        if let Some((model, rng)) = pacer.as_mut() {
            let delay = model.sample_ms(rng);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        let mut wire = Vec::new();
        for f in &pending {
            let data = encode_session(&SessionFrame::Data(f.to_vec()));
            encode_frame(&data, &mut wire);
        }
        let deadline = Instant::now() + Duration::from_millis(inner.cfg.write_timeout_ms);
        match write_all_deadline(&mut stream, &wire, deadline) {
            Ok(()) => pending.clear(),
            Err(_) => {
                // connection is toast; pending stays for the next session
                let mut slots = inner.slots.lock();
                if let Some(slot) = slots.get_mut(&node) {
                    if slot.generation == generation && slot.up {
                        if let Some(s) = &slot.stream {
                            s.shutdown_both();
                        }
                        slot.stream = None;
                        slot.up = false;
                        drop(slots);
                        inner.emit(TransportEvent::Disconnected { peer: node });
                    }
                }
            }
        }
    }
}

/// Reads one session's frames into the shared event queue until EOF or a
/// framing error; a stale generation (session since replaced) exits
/// silently so a reconnect can't be torn down by its predecessor's reader.
fn server_reader_loop(
    inner: &Arc<ServerShared>,
    node: u32,
    epoch: u64,
    generation: u64,
    mut stream: Stream,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut dec = FrameDecoder::new(inner.cfg.frame);
    // heap-allocated once per reader thread; 64 KiB would be a large
    // stack frame for something this long-lived
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        if inner.closed.load(Ordering::Acquire) {
            return;
        }
        loop {
            match dec.next_frame() {
                Ok(Some(frame)) => {
                    if let Ok(SessionFrame::Data(payload)) = decode_session(&frame) {
                        inner.emit(TransportEvent::Delivery {
                            from: node,
                            epoch,
                            msg: Bytes::from(payload),
                        });
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // corrupt stream: drop the session, let the peer redial
                    session_down(inner, node, generation);
                    return;
                }
            }
        }
        match stream.read_chunk(&mut buf) {
            Ok(0) => {
                session_down(inner, node, generation);
                return;
            }
            Ok(n) => dec.extend(&buf[..n]),
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
            Err(_) => {
                session_down(inner, node, generation);
                return;
            }
        }
    }
}

/// Marks `node`'s session dead if it is still the one this reader served.
fn session_down(inner: &Arc<ServerShared>, node: u32, generation: u64) {
    let mut slots = inner.slots.lock();
    if let Some(slot) = slots.get_mut(&node) {
        if slot.generation == generation && slot.up {
            if let Some(s) = &slot.stream {
                s.shutdown_both();
            }
            slot.stream = None;
            slot.up = false;
            drop(slots);
            inner.emit(TransportEvent::Disconnected { peer: node });
        }
    }
}

// ---------------------------------------------------------------------------
// peer (client)

const HEALTH_UP: u32 = 0;
const HEALTH_DOWN: u32 = 1;
const HEALTH_FENCED: u32 = 2;

struct PeerShared {
    cfg: SocketConfig,
    addr: TransportAddr,
    node: u32,
    epoch: u64,
    events_tx: Sender<TransportEvent<Bytes>>,
    events_rx: Receiver<TransportEvent<Bytes>>,
    outbox_tx: Sender<Bytes>,
    outbox_rx: Receiver<Bytes>,
    health: AtomicU32,
    /// Highest session generation whose reader saw EOF/error — the run
    /// loop compares with its current generation to notice silent death.
    dead_gen: AtomicU64,
    closed: AtomicBool,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A worker process's end of the socket transport: one supervised session
/// towards the coordinator (`peer 0` in [`Transport`] terms).
pub struct SocketPeer {
    inner: Arc<PeerShared>,
}

impl SocketPeer {
    /// Starts the supervisor dialing `addr`, presenting `node` +
    /// incarnation `epoch` in its handshake. Returns immediately; watch
    /// [`Transport::recv_timeout`] events (or [`Self::wait_connected`])
    /// for the outcome of the first dial.
    #[must_use]
    pub fn connect(addr: TransportAddr, node: u32, epoch: u64, cfg: SocketConfig) -> SocketPeer {
        let (events_tx, events_rx) = bounded(cfg.inbound_capacity);
        let (outbox_tx, outbox_rx) = bounded(cfg.outbound_capacity);
        let inner = Arc::new(PeerShared {
            cfg,
            addr,
            node,
            epoch,
            events_tx,
            events_rx,
            outbox_tx,
            outbox_rx,
            health: AtomicU32::new(HEALTH_DOWN),
            dead_gen: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
        });
        let run_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name(format!("oml-peer-{node}"))
            .spawn(move || peer_run_loop(&run_inner))
            .expect("spawn peer supervisor");
        inner.threads.lock().push(handle);
        SocketPeer { inner }
    }

    /// Blocks until the first handshake resolves (accepted or fenced) or
    /// `timeout` passes. `true` when connected.
    pub fn wait_connected(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            match self.inner.health.load(Ordering::Acquire) {
                HEALTH_UP => return true,
                HEALTH_FENCED => return false,
                _ => {}
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Whether this peer's incarnation has been refused (terminal).
    #[must_use]
    pub fn is_fenced(&self) -> bool {
        self.inner.health.load(Ordering::Acquire) == HEALTH_FENCED
    }
}

impl Transport<Bytes> for SocketPeer {
    fn peers(&self) -> u32 {
        1
    }

    fn send(&self, to: u32, msg: Bytes) -> Result<(), TransportError> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        if to != 0 {
            return Err(TransportError::Down { peer: to });
        }
        // while down (non-fenced), frames still queue (bounded) — the
        // supervisor flushes them after reconnecting
        if self.inner.health.load(Ordering::Acquire) == HEALTH_FENCED {
            return Err(TransportError::Fenced {
                peer: 0,
                epoch: self.inner.epoch,
            });
        }
        send_with_deadline(&self.inner.outbox_tx, msg, self.inner.cfg.send_deadline_ms)
    }

    fn recv_timeout(
        &self,
        _at: u32,
        timeout: Duration,
    ) -> Result<TransportEvent<Bytes>, TransportError> {
        match self.inner.events_rx.recv_timeout(timeout) {
            Ok(ev) => Ok(ev),
            Err(_) if self.inner.closed.load(Ordering::Acquire) => Err(TransportError::Closed),
            Err(_) => Err(TransportError::Timeout {
                waited_ms: ms(timeout),
            }),
        }
    }

    fn link_health(&self, _to: u32) -> LinkHealth {
        match self.inner.health.load(Ordering::Acquire) {
            HEALTH_UP => LinkHealth::Up,
            HEALTH_FENCED => LinkHealth::Fenced,
            _ => LinkHealth::Down,
        }
    }

    fn shutdown(&self) {
        self.inner.closed.store(true, Ordering::Release);
        let handles: Vec<_> = self.inner.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Dials once under the config's deadlines, presenting `attempt` in the
/// Hello (1 = first try of this outage). `Ok(Some(stream))` = session up,
/// `Ok(None)` = fenced (terminal), `Err` = retry later.
fn peer_dial_attempt(inner: &PeerShared, attempt: u32) -> io::Result<Option<Stream>> {
    let deadline = Instant::now() + Duration::from_millis(inner.cfg.connect_timeout_ms);
    let mut stream = connect_deadline(&inner.addr, deadline)?;
    let hs_deadline = Instant::now() + Duration::from_millis(inner.cfg.handshake_timeout_ms);
    let hello = encode_session(&SessionFrame::Hello {
        node: inner.node,
        epoch: inner.epoch,
        attempt,
    });
    let mut wire = Vec::new();
    encode_frame(&hello, &mut wire);
    write_all_deadline(&mut stream, &wire, hs_deadline)?;
    let mut dec = FrameDecoder::new(inner.cfg.frame);
    let ack = read_frame_deadline(&mut stream, &mut dec, hs_deadline)?;
    match decode_session(&ack) {
        Ok(SessionFrame::HelloAck { accepted: true, .. }) => Ok(Some(stream)),
        Ok(SessionFrame::HelloAck {
            accepted: false, ..
        }) => Ok(None),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad handshake ack",
        )),
    }
}

fn peer_run_loop(inner: &Arc<PeerShared>) {
    let mut sup = Supervisor::new(BackoffConfig {
        seed: inner.cfg.backoff.seed ^ (u64::from(inner.node) << 32) ^ inner.epoch,
        ..inner.cfg.backoff
    });
    let started = Instant::now();
    let now_ms = |started: Instant| ms(started.elapsed());
    let mut stream: Option<Stream> = None;
    let mut generation: u64 = 0;
    let mut pending: VecDeque<Bytes> = VecDeque::new();
    let mut ever_connected = false;
    let mut pacer = inner
        .cfg
        .pacing
        .as_ref()
        .map(|p| (p.model, SimRng::seed_from(p.seed ^ u64::from(inner.node))));

    while !inner.closed.load(Ordering::Acquire) {
        // did our reader pronounce the current session dead?
        if stream.is_some() && inner.dead_gen.load(Ordering::Acquire) >= generation {
            if let Some(s) = &stream {
                s.shutdown_both();
            }
            stream = None;
            inner.health.store(HEALTH_DOWN, Ordering::Release);
            sup.on_failure(now_ms(started));
            let _ = inner
                .events_tx
                .send(TransportEvent::Disconnected { peer: 0 });
        }

        match sup.state() {
            LinkState::Fenced { .. } => return, // terminal; health already set
            LinkState::Connected { .. } if stream.is_some() => {
                // writer duties below
            }
            LinkState::Connected { .. } | LinkState::Probing => {
                // lost the stream without a recorded failure (shouldn't
                // happen, but never spin)
                sup.on_failure(now_ms(started));
                continue;
            }
            LinkState::Backoff { .. } => {
                if sup.due(now_ms(started)) {
                    sup.begin_probe();
                    let attempt = sup.outage_attempts();
                    match peer_dial_attempt(inner, attempt) {
                        Ok(Some(s)) => {
                            generation += 1;
                            let attempts = sup.on_established(inner.epoch);
                            // reader for this session
                            if let Ok(read_half) = s.try_clone() {
                                let r_inner = Arc::clone(inner);
                                let gen = generation;
                                let h = std::thread::Builder::new()
                                    .name(format!("oml-peer-reader-{}", inner.node))
                                    .spawn(move || peer_reader_loop(&r_inner, gen, read_half))
                                    .expect("spawn peer reader");
                                inner.threads.lock().push(h);
                                stream = Some(s);
                                inner.health.store(HEALTH_UP, Ordering::Release);
                                let ev = if ever_connected {
                                    TransportEvent::Reconnected {
                                        peer: 0,
                                        epoch: inner.epoch,
                                        attempt: attempts,
                                    }
                                } else {
                                    TransportEvent::Connected {
                                        peer: 0,
                                        epoch: inner.epoch,
                                    }
                                };
                                ever_connected = true;
                                let _ = inner.events_tx.send(ev);
                            } else {
                                s.shutdown_both();
                                sup.on_failure(now_ms(started));
                            }
                        }
                        Ok(None) => {
                            sup.on_fenced(inner.epoch);
                            inner.health.store(HEALTH_FENCED, Ordering::Release);
                            let _ = inner.events_tx.send(TransportEvent::HandshakeFenced {
                                peer: 0,
                                epoch: inner.epoch,
                            });
                            return;
                        }
                        Err(_) => {
                            sup.on_failure(now_ms(started));
                            inner.health.store(HEALTH_DOWN, Ordering::Release);
                        }
                    }
                } else {
                    std::thread::sleep(Duration::from_millis(2));
                }
                continue;
            }
        }

        // connected: drain the outbox and write a batch
        if pending.is_empty() {
            match inner.outbox_rx.recv_timeout(Duration::from_millis(20)) {
                Ok(frame) => pending.push_back(frame),
                Err(_) => continue,
            }
        }
        while pending.len() < inner.cfg.max_batch {
            match inner.outbox_rx.try_recv() {
                Ok(frame) => pending.push_back(frame),
                Err(_) => break,
            }
        }
        if let Some((model, rng)) = pacer.as_mut() {
            let delay = model.sample_ms(rng);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        let mut wire = Vec::new();
        for f in &pending {
            let data = encode_session(&SessionFrame::Data(f.to_vec()));
            encode_frame(&data, &mut wire);
        }
        let deadline = Instant::now() + Duration::from_millis(inner.cfg.write_timeout_ms);
        let s = stream.as_mut().expect("stream present when connected");
        match write_all_deadline(s, &wire, deadline) {
            Ok(()) => pending.clear(),
            Err(_) => {
                s.shutdown_both();
                stream = None;
                inner.health.store(HEALTH_DOWN, Ordering::Release);
                sup.on_failure(now_ms(started));
                let _ = inner
                    .events_tx
                    .send(TransportEvent::Disconnected { peer: 0 });
                // pending is retained and flushed after the reconnect
            }
        }
    }
    if let Some(s) = &stream {
        s.shutdown_both();
    }
}

/// Reads the coordinator's frames for session `generation`; on EOF/error
/// records the dead generation for the supervisor to notice.
fn peer_reader_loop(inner: &Arc<PeerShared>, generation: u64, mut stream: Stream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut dec = FrameDecoder::new(inner.cfg.frame);
    // heap-allocated once per reader thread, like the server's reader
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        if inner.closed.load(Ordering::Acquire) {
            return;
        }
        loop {
            match dec.next_frame() {
                Ok(Some(frame)) => {
                    if let Ok(SessionFrame::Data(payload)) = decode_session(&frame) {
                        let _ = inner.events_tx.send(TransportEvent::Delivery {
                            from: 0,
                            epoch: 0,
                            msg: Bytes::from(payload),
                        });
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    inner.dead_gen.fetch_max(generation, Ordering::AcqRel);
                    return;
                }
            }
        }
        match stream.read_chunk(&mut buf) {
            Ok(0) => {
                inner.dead_gen.fetch_max(generation, Ordering::AcqRel);
                return;
            }
            Ok(n) => dec.extend(&buf[..n]),
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
            Err(_) => {
                inner.dead_gen.fetch_max(generation, Ordering::AcqRel);
                return;
            }
        }
    }
}
