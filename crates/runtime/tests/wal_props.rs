//! Property tests for the write-ahead checkpoint store's record framing,
//! mirroring `frame_props.rs` for the WAL layer: arbitrary record batches
//! round-trip through any split of the byte stream (kernels split writes;
//! the replayer must not care), truncation at **every** byte offset
//! recovers exactly the longest valid record prefix with `corrupt = false`
//! (a torn tail is steady state), and flipping any single bit is either
//! flagged as corruption or surfaces as a shorter prefix — never a
//! silently-wrong record.

use bytes::Bytes;
use oml_core::ids::ObjectId;
use oml_runtime::store::wal::{encode_record, replay_segment, WalRecord, WalReplayer};
use proptest::prelude::*;

const MAX_FRAME: u32 = 4096;

fn record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            "[a-z]{0,12}",
            proptest::collection::vec(any::<u8>(), 0..64),
        )
            .prop_map(
                |(object, object_epoch, seq, type_tag, state)| WalRecord::Put {
                    object: ObjectId::new(object),
                    object_epoch,
                    seq,
                    type_tag,
                    state: Bytes::from(state),
                }
            ),
        any::<u32>().prop_map(|o| WalRecord::Remove {
            object: ObjectId::new(o)
        }),
        Just(WalRecord::Clear),
        (any::<u32>(), any::<u64>()).prop_map(|(o, epoch)| WalRecord::Epoch {
            object: ObjectId::new(o),
            epoch,
        }),
        (any::<u32>(), any::<u64>()).prop_map(|(key, value)| WalRecord::Meta { key, value }),
    ]
}

fn records() -> impl Strategy<Value = Vec<WalRecord>> {
    proptest::collection::vec(record(), 1..8)
}

fn encode_all(recs: &[WalRecord]) -> Vec<u8> {
    let mut wire = Vec::new();
    for rec in recs {
        encode_record(rec, &mut wire);
    }
    wire
}

/// Byte offset at which each record's frame ends.
fn frame_ends(recs: &[WalRecord]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut acc = 0usize;
    let mut one = Vec::new();
    for rec in recs {
        one.clear();
        encode_record(rec, &mut one);
        acc += one.len();
        ends.push(acc);
    }
    ends
}

proptest! {
    /// Any record batch round-trips through any chunking of the segment —
    /// including chunk boundaries splitting frame headers, payloads, and
    /// record boundaries — with no torn bytes and no corruption.
    #[test]
    fn records_round_trip_under_any_split(recs in records(), chunk in 1usize..64) {
        let wire = encode_all(&recs);
        let mut replayer = WalReplayer::new(MAX_FRAME);
        for piece in wire.chunks(chunk.max(1)) {
            replayer.feed(piece);
        }
        let seg = replayer.finish();
        prop_assert!(!seg.corrupt, "clean stream flagged corrupt");
        prop_assert_eq!(seg.torn_bytes, 0u64, "clean stream left torn bytes");
        prop_assert_eq!(seg.valid_bytes, wire.len() as u64);
        prop_assert_eq!(seg.records, recs);
    }

    /// Truncation at every byte offset — the crash landed mid-append —
    /// recovers exactly the records whose frames are fully inside the
    /// prefix, reports the cut as torn bytes, and never flags corruption:
    /// a torn tail is steady state, not an error.
    #[test]
    fn truncation_at_every_offset_recovers_longest_valid_prefix(recs in records()) {
        let wire = encode_all(&recs);
        let ends = frame_ends(&recs);
        for cut in 0..=wire.len() {
            let seg = replay_segment(&wire[..cut], MAX_FRAME);
            let complete = ends.iter().filter(|&&e| e <= cut).count();
            prop_assert!(!seg.corrupt, "cut at {} misread as corruption", cut);
            prop_assert_eq!(
                seg.records.as_slice(),
                &recs[..complete],
                "cut at {} must yield exactly the complete records",
                cut
            );
            let valid = *ends[..complete].last().unwrap_or(&0) as u64;
            prop_assert_eq!(seg.valid_bytes, valid);
            prop_assert_eq!(seg.torn_bytes, cut as u64 - valid);
        }
    }

    /// Flipping any single bit of the segment is never silently accepted:
    /// the replay either stops on a flagged corruption or yields a strict
    /// record prefix with torn bytes — it never reproduces the original
    /// batch, and every record it does yield is an untouched original.
    #[test]
    fn single_bit_corruption_never_passes_silently(
        recs in records(),
        pos_seed in any::<u32>(),
        bit in 0u8..8,
    ) {
        let mut wire = encode_all(&recs);
        let pos = pos_seed as usize % wire.len();
        wire[pos] ^= 1 << bit;
        let seg = replay_segment(&wire, MAX_FRAME);
        prop_assert_ne!(seg.records.as_slice(), recs.as_slice());
        prop_assert!(
            seg.corrupt || seg.torn_bytes > 0,
            "corruption at byte {} surfaced as neither corrupt nor torn",
            pos
        );
        // whatever prefix did come back must be bit-identical originals
        prop_assert!(seg.records.len() < recs.len());
        prop_assert_eq!(seg.records.as_slice(), &recs[..seg.records.len()]);
    }
}
