//! Every raw socket operation in oml-runtime must live in
//! `transport/netio.rs`, whose wrappers carry explicit deadlines
//! (`connect_deadline`, `accept_deadline`, `write_all_deadline`,
//! `read_chunk` under a read timeout). A bare `connect()`/`accept()`/
//! `write()` anywhere else can block forever on a half-dead peer and
//! wedge a supervisor thread — the PR 1 "no bare `recv()`" rule, extended
//! to sockets. This test scans the crate's sources and fails on any std
//! networking or raw io-trait usage outside that one reviewed file.

use std::fs;
use std::path::Path;

/// The one file allowed to name std networking types and the raw
/// `io::Read`/`io::Write` traits: every call site there is wrapped in a
/// deadline-carrying helper.
const IO_BOUNDARY: &str = "netio.rs";

/// Patterns that indicate raw socket construction or raw blocking I/O.
/// Conservative on purpose: naming the *types* is already a smell outside
/// the boundary, whether or not a blocking call follows.
const FORBIDDEN: &[&str] = &[
    "std::net::",
    "std::os::unix::net::",
    "TcpStream::",
    "TcpListener::",
    "UnixStream::",
    "UnixListener::",
    "io::Read",
    "io::Write",
];

#[test]
fn raw_socket_io_is_confined_to_netio() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut offenders = Vec::new();
    scan(&src, &mut offenders);
    assert!(
        offenders.is_empty(),
        "raw socket i/o outside transport/netio.rs — route it through the \
         deadline-carrying wrappers (connect_deadline / accept_deadline / \
         write_all_deadline / read_chunk) instead:\n{}",
        offenders.join("\n")
    );
}

fn scan(dir: &Path, offenders: &mut Vec<String>) {
    for entry in fs::read_dir(dir).expect("source dir readable") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            scan(&path, offenders);
            continue;
        }
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf-8 file name");
        if name == IO_BOUNDARY {
            continue;
        }
        let text = fs::read_to_string(&path).expect("source readable");
        for (i, line) in text.lines().enumerate() {
            let trimmed = line.trim_start();
            if trimmed.starts_with("//") {
                continue;
            }
            if FORBIDDEN.iter().any(|pat| line.contains(pat)) {
                offenders.push(format!("{}:{}: {}", path.display(), i + 1, line.trim()));
            }
        }
    }
}

#[test]
fn netio_itself_has_no_deadline_free_blocking_calls() {
    // inside the boundary file, the dangerous zero-argument blocking forms
    // must not appear: connect without a deadline wrapper, accept outside
    // the poll loop, write_all on a stream that was not just re-armed
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("src")
        .join("transport")
        .join(IO_BOUNDARY);
    let text = fs::read_to_string(&path).expect("netio.rs readable");
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue;
        }
        assert!(
            !line.contains("TcpStream::connect(",),
            "netio.rs:{}: bare TcpStream::connect (use connect_timeout): {}",
            i + 1,
            line.trim()
        );
    }
}
