//! End-to-end protocol verification: drive real clusters with tracing
//! enabled, feed the collected event streams to `oml-check`, and assert the
//! paper's invariants hold — single residency, place-lock exclusivity,
//! closure atomicity, lease soundness. The same runs feed the lock-order
//! analyzer; the final test asserts the acquisition graph is acyclic and
//! every observed nesting is on the documented allowlist.

use std::time::Duration;

use oml_check::{check_trace, lockorder};
use oml_core::ids::{NodeId, ObjectId};
use oml_core::policy::PolicyKind;
use oml_runtime::wire::{WireReader, WireWriter};
use oml_runtime::{Cluster, FaultPlan, MobileObject, RuntimeError, KNOWN_LOCK_ORDER};

struct Counter(u64);

impl MobileObject for Counter {
    fn type_tag(&self) -> &'static str {
        "counter"
    }
    fn invoke(&mut self, method: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        match method {
            "add" => {
                let mut r = WireReader::new(payload);
                self.0 += r.u64()?;
                Ok(WireWriter::new().u64(self.0).finish().to_vec())
            }
            "get" => Ok(WireWriter::new().u64(self.0).finish().to_vec()),
            other => Err(format!("no such method: {other}")),
        }
    }
    fn linearize(&self) -> Vec<u8> {
        WireWriter::new().u64(self.0).finish().to_vec()
    }
}

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn register_counter(cluster: &Cluster) {
    cluster.register_type("counter", |bytes| {
        let mut r = WireReader::new(bytes);
        Box::new(Counter(r.u64().expect("valid counter state")))
    });
}

#[test]
fn fault_free_migrations_leave_a_clean_trace() {
    let cluster = Cluster::builder()
        .nodes(3)
        .policy(PolicyKind::TransientPlacement)
        .lease_ms(1_000)
        .manual_clock()
        .trace()
        .build();
    assert!(cluster.trace_enabled());
    register_counter(&cluster);

    // an attachment closure that must migrate atomically, in an alliance
    let a = cluster.create(n(0), Box::new(Counter(0))).unwrap();
    let b = cluster.create(n(0), Box::new(Counter(0))).unwrap();
    let ally = cluster.create_alliance("pair");
    cluster.join_alliance(ally, a).unwrap();
    cluster.join_alliance(ally, b).unwrap();
    cluster.attach(a, b, Some(ally)).unwrap();

    for round in 0..3u32 {
        let to = n((round + 1) % 3);
        let guard = cluster.move_block_in(a, to, Some(ally)).unwrap();
        assert!(guard.granted());
        cluster
            .invoke(a, "add", &WireWriter::new().u64(1).finish())
            .unwrap();
        drop(guard); // end-request releases the placement lock
    }
    // a visit: move there and back
    {
        let guard = cluster.visit_block(b, n(2)).unwrap();
        assert!(guard.granted());
        cluster.invoke(b, "get", &[]).unwrap();
    }
    cluster.detach(a, b);
    cluster.shutdown();

    let trace = cluster.take_trace();
    assert!(!trace.is_empty(), "tracing must record the protocol");
    let report = check_trace(&trace);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn crash_releases_the_stranded_placement_locks_immediately() {
    // no lease TTL: without the crash-release path these locks would be
    // held forever, since the holders' end-requests can never arrive
    let cluster = Cluster::builder()
        .nodes(3)
        .policy(PolicyKind::TransientPlacement)
        .call_timeout(Duration::from_millis(80))
        .invoke_retries(0)
        .trace()
        .build();
    register_counter(&cluster);

    let obj = cluster.create(n(0), Box::new(Counter(3))).unwrap();
    let guard = cluster.move_block(obj, n(2)).unwrap();
    assert!(guard.granted());
    assert_eq!(cluster.held_locks().len(), 1, "the move-block holds a lock");

    cluster.crash_node(n(2)).unwrap();
    assert_eq!(
        cluster.held_locks(),
        vec![],
        "a crash must release the dead host's placement locks"
    );

    // the object itself survived in the stash and a new block can claim it
    cluster.restart_node(n(2)).unwrap();
    let mut granted = false;
    for _ in 0..50 {
        if let Ok(g) = cluster.move_block(obj, n(1)) {
            granted = g.granted();
            drop(g);
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(granted, "the released lock must be claimable again");

    drop(guard); // the stale end-request is now a harmless no-op
    cluster.shutdown();
    let report = check_trace(&cluster.take_trace());
    assert!(report.is_clean(), "{report}");
}

#[test]
fn chaos_schedule_trace_upholds_the_protocol_invariants() {
    // the chaos_runtime.rs schedule, traced: drops, duplicates, delays,
    // lost end-requests, a partition and a crash/restart cycle — the
    // checker must still find a protocol-consistent history
    const NODES: u32 = 4;
    const LEASE_MS: u64 = 1_000;
    let plan = FaultPlan::seeded(0xC0A5)
        .drop_probability(0.08)
        .duplicate_probability(0.05)
        .delay_probability(0.10, 3)
        .drop_end_requests(0.5);
    let cluster = Cluster::builder()
        .nodes(NODES)
        .policy(PolicyKind::TransientPlacement)
        .faults(plan)
        .call_timeout(Duration::from_millis(100))
        .invoke_retries(2)
        .lease_ms(LEASE_MS)
        .manual_clock()
        .trace()
        .build();
    register_counter(&cluster);

    let objects: Vec<ObjectId> = (0..3)
        .map(|i| cluster.create(n(i), Box::new(Counter(0))).unwrap())
        .collect();
    for i in 0..40u64 {
        let obj = objects[(i % 3) as usize];
        match i {
            10 => cluster.partition(n(0), n(1)).unwrap(),
            18 => cluster.heal(n(0), n(1)).unwrap(),
            22 => cluster.crash_node(n(2)).unwrap(),
            30 => cluster.restart_node(n(2)).unwrap(),
            _ => {}
        }
        if i % 3 == 0 {
            if let Ok(guard) = cluster.move_block(obj, n((i % u64::from(NODES)) as u32)) {
                drop(guard);
            }
        }
        match cluster.invoke(obj, "add", &WireWriter::new().u64(1).finish()) {
            Ok(_) | Err(RuntimeError::Timeout { .. }) => {}
            Err(other) => panic!("op {i}: unexpected error {other}"),
        }
    }
    cluster.heal_all();
    match cluster.restart_node(n(2)) {
        // the node usually came back at op 30 and is simply still running
        Ok(_) | Err(RuntimeError::NotDead(_)) => {}
        Err(other) => panic!("quiesce restart: {other}"),
    }
    cluster.advance_clock(2 * LEASE_MS);
    cluster.sweep_leases();
    cluster.shutdown();

    let trace = cluster.take_trace();
    assert!(trace.len() > 100, "chaos must generate a substantial trace");
    let report = check_trace(&trace);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn lock_acquisition_graph_is_acyclic_and_allowlisted() {
    // exercise every lock site in one scenario…
    let cluster = Cluster::builder()
        .nodes(2)
        .policy(PolicyKind::CompareAndReinstantiate)
        .lease_ms(500)
        .manual_clock()
        .trace()
        .build();
    register_counter(&cluster);
    let a = cluster.create(n(0), Box::new(Counter(0))).unwrap();
    let b = cluster.create(n(1), Box::new(Counter(0))).unwrap();
    let ally = cluster.create_alliance("pair");
    cluster.join_alliance(ally, a).unwrap();
    cluster.join_alliance(ally, b).unwrap();
    cluster.attach(a, b, Some(ally)).unwrap(); // the one legal nesting
    cluster.fix(b);
    let guard = cluster.move_block_in(a, n(1), Some(ally)).unwrap();
    drop(guard);
    cluster.invoke(a, "get", &[]).unwrap();
    cluster.advance_clock(1_000);
    cluster.sweep_leases();
    cluster.crash_node(n(1)).unwrap();
    cluster.restart_node(n(1)).unwrap();
    cluster.shutdown();

    // …then audit the global acquisition graph (debug builds record every
    // OrderedMutex/OrderedRwLock nesting across all tests in this process)
    lockorder::assert_acyclic();
    let unknown = lockorder::unknown_edges(KNOWN_LOCK_ORDER);
    assert!(
        unknown.is_empty(),
        "undocumented lock nesting(s): {unknown:?} — review for deadlock \
         safety and add to KNOWN_LOCK_ORDER + DESIGN.md §10 if legal"
    );
}
