//! Property-based tests: random operation sequences against the real
//! runtime never lose objects, deadlock, or corrupt state.

use oml_core::attach::AttachmentMode;
use oml_core::ids::{NodeId, ObjectId};
use oml_core::policy::PolicyKind;
use oml_runtime::wire::{WireReader, WireWriter};
use oml_runtime::{Cluster, MobileObject};
use proptest::prelude::*;

/// A register: `set` overwrites, `get` reads; migrations must preserve it.
struct Register(u64);

impl MobileObject for Register {
    fn type_tag(&self) -> &'static str {
        "register"
    }
    fn invoke(&mut self, method: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        match method {
            "set" => {
                self.0 = WireReader::new(payload).u64()?;
                Ok(Vec::new())
            }
            "get" => Ok(WireWriter::new().u64(self.0).finish().to_vec()),
            other => Err(format!("no such method: {other}")),
        }
    }
    fn linearize(&self) -> Vec<u8> {
        WireWriter::new().u64(self.0).finish().to_vec()
    }
}

#[derive(Debug, Clone)]
enum Op {
    Set { obj: usize, value: u64 },
    Get { obj: usize },
    Move { obj: usize, to: u32, end: bool },
    Visit { obj: usize, to: u32 },
    FixToggle { obj: usize },
    Attach { a: usize, b: usize },
    Detach { a: usize, b: usize },
}

fn ops(objects: usize, nodes: u32) -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0..objects, any::<u64>()).prop_map(|(obj, value)| Op::Set { obj, value }),
        (0..objects).prop_map(|obj| Op::Get { obj }),
        (0..objects, 0..nodes, any::<bool>()).prop_map(|(obj, to, end)| Op::Move { obj, to, end }),
        (0..objects, 0..nodes).prop_map(|(obj, to)| Op::Visit { obj, to }),
        (0..objects).prop_map(|obj| Op::FixToggle { obj }),
        (0..objects, 0..objects).prop_map(|(a, b)| Op::Attach { a, b }),
        (0..objects, 0..objects).prop_map(|(a, b)| Op::Detach { a, b }),
    ];
    proptest::collection::vec(op, 1..60)
}

fn run_sequence(policy: PolicyKind, mode: AttachmentMode, script: &[Op]) {
    const OBJECTS: usize = 4;
    const NODES: u32 = 3;

    let cluster = Cluster::builder()
        .nodes(NODES)
        .policy(policy)
        .attachment_mode(mode)
        .build();
    cluster.register_type("register", |bytes| {
        Box::new(Register(WireReader::new(bytes).u64().expect("state")))
    });

    let objs: Vec<ObjectId> = (0..OBJECTS)
        .map(|i| {
            cluster
                .create(NodeId::new(i as u32 % NODES), Box::new(Register(i as u64)))
                .expect("create")
        })
        .collect();
    // shadow model of the register values
    let mut expected: Vec<u64> = (0..OBJECTS as u64).collect();
    let mut fixed = [false; OBJECTS];

    for op in script {
        match *op {
            Op::Set { obj, value } => {
                cluster
                    .invoke(objs[obj], "set", &WireWriter::new().u64(value).finish())
                    .expect("set");
                expected[obj] = value;
            }
            Op::Get { obj } => {
                let out = cluster.invoke(objs[obj], "get", &[]).expect("get");
                let got = WireReader::new(&out).u64().unwrap();
                assert_eq!(got, expected[obj], "register {obj} lost a write");
            }
            Op::Move { obj, to, end } => {
                let guard = cluster
                    .move_block(objs[obj], NodeId::new(to))
                    .expect("move");
                if end {
                    guard.end();
                }
                // else: drop at scope end (same effect, different path)
            }
            Op::Visit { obj, to } => {
                let guard = cluster
                    .visit_block(objs[obj], NodeId::new(to))
                    .expect("visit");
                drop(guard);
            }
            Op::FixToggle { obj } => {
                if fixed[obj] {
                    cluster.unfix(objs[obj]);
                } else {
                    cluster.fix(objs[obj]);
                }
                fixed[obj] = !fixed[obj];
            }
            Op::Attach { a, b } => {
                if a != b {
                    let _ = cluster.attach(objs[a], objs[b], None);
                }
            }
            Op::Detach { a, b } => {
                let _ = cluster.detach(objs[a], objs[b]);
            }
        }
    }

    // every object is still reachable, at a valid node, with correct state
    for (i, &o) in objs.iter().enumerate() {
        let node = cluster.location_of(o).expect("object must have a location");
        assert!(node.as_u32() < NODES);
        let out = cluster.invoke(o, "get", &[]).expect("final get");
        assert_eq!(WireReader::new(&out).u64().unwrap(), expected[i]);
    }
    cluster.shutdown();
}

/// How one step of the guard-lifecycle script releases its guards.
#[derive(Debug, Clone, Copy)]
enum Release {
    Drop,
    End,
    TryEnd,
}

#[derive(Debug, Clone, Copy)]
struct GuardStep {
    to: u32,
    /// Also open a conflicting block (which placement must deny).
    contend: Option<u32>,
    release: Release,
}

fn guard_steps(nodes: u32) -> impl Strategy<Value = Vec<GuardStep>> {
    let release = prop_oneof![
        Just(Release::Drop),
        Just(Release::End),
        Just(Release::TryEnd),
    ];
    let step =
        (0..nodes, proptest::option::of(0..nodes), release).prop_map(|(to, contend, release)| {
            GuardStep {
                to,
                contend,
                release,
            }
        });
    proptest::collection::vec(step, 1..20)
}

/// Releases a guard along the chosen path; all three must behave the
/// same as far as the lock table is concerned.
fn release(guard: oml_runtime::MoveGuard<'_>, how: Release, shut: bool) {
    match how {
        Release::Drop => drop(guard),
        Release::End => guard.end(),
        Release::TryEnd => {
            let r = guard.try_end();
            if shut {
                assert_eq!(r, Err(oml_runtime::RuntimeError::ShuttingDown));
            } else {
                r.expect("a live cluster accepts the end-request");
            }
        }
    }
}

/// Every guard — granted, denied, or outliving the cluster — ends its
/// block exactly once; no release path leaks a placement lock.
fn run_guard_sequence(script: &[GuardStep], shutdown_at: Option<usize>) {
    const NODES: u32 = 3;
    // leased locks on a manual clock: time stands still during the
    // script (no spurious expiry), and a lock orphaned by a guard that
    // outlives the cluster is reclaimable by advancing the clock
    let cluster = Cluster::builder()
        .nodes(NODES)
        .policy(PolicyKind::TransientPlacement)
        .lease_ms(1_000)
        .manual_clock()
        .build();
    cluster.register_type("register", |bytes| {
        Box::new(Register(WireReader::new(bytes).u64().expect("state")))
    });
    let obj = cluster
        .create(NodeId::new(0), Box::new(Register(9)))
        .expect("create");

    let mut shut = false;
    for (i, step) in script.iter().enumerate() {
        if shutdown_at == Some(i) {
            // the shutdown interleaving: take a guard first, shut the
            // cluster down under it, then run the release path anyway
            let held = cluster.move_block(obj, NodeId::new(step.to)).expect("move");
            cluster.shutdown();
            shut = true;
            release(held, step.release, true);
        }
        match cluster.move_block(obj, NodeId::new(step.to)) {
            Err(e) => {
                assert!(shut, "a live cluster grants sequential moves: {e}");
                assert_eq!(e, oml_runtime::RuntimeError::ShuttingDown);
                continue;
            }
            Ok(guard) => {
                assert!(!shut, "no guards after shutdown");
                assert!(guard.granted(), "sequential movers never conflict");
                if let Some(to) = step.contend {
                    let denied = cluster.move_block(obj, NodeId::new(to)).expect("move");
                    assert!(!denied.granted(), "the lock is held by the open block");
                    release(denied, step.release, false);
                }
                release(guard, step.release, false);
                // a blocking invoke to the same host is a fence: the
                // fire-and-forget end-request travels the same queue
                cluster.invoke(obj, "get", &[]).expect("fence read");
                assert_eq!(cluster.held_locks(), vec![], "leaked a lock at step {i}");
            }
        }
    }
    cluster.shutdown();
    // a guard released after shutdown cannot deliver its end-request —
    // its lock is reclaimed by the lease, never leaked forever
    cluster.advance_clock(2_000);
    cluster.sweep_leases();
    assert_eq!(cluster.held_locks(), vec![], "leaked a lock past shutdown");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn placement_survives_random_scripts(script in ops(4, 3)) {
        run_sequence(PolicyKind::TransientPlacement, AttachmentMode::Unrestricted, &script);
    }

    #[test]
    fn conventional_survives_random_scripts(script in ops(4, 3)) {
        run_sequence(PolicyKind::ConventionalMigration, AttachmentMode::Unrestricted, &script);
    }

    #[test]
    fn exclusive_attachment_survives_random_scripts(script in ops(4, 3)) {
        run_sequence(PolicyKind::TransientPlacement, AttachmentMode::Exclusive, &script);
    }

    #[test]
    fn dynamic_policy_survives_random_scripts(script in ops(4, 3)) {
        run_sequence(PolicyKind::CompareAndReinstantiate, AttachmentMode::Unrestricted, &script);
    }

    /// Satellite of the fault work: under any interleaving of granted,
    /// denied and shutdown-crossed guards, dropping a [`MoveGuard`]
    /// always ends its block — no release path leaks a placement lock.
    #[test]
    fn move_guards_always_end_their_blocks(
        script in guard_steps(3),
        shutdown_frac in proptest::option::of(0.0f64..1.0),
    ) {
        let shutdown_at = shutdown_frac.map(|f| {
            // scale into the script so the shutdown interleaving is hit
            ((script.len() as f64 * f) as usize).min(script.len() - 1)
        });
        run_guard_sequence(&script, shutdown_at);
    }
}
