//! The scheduler seam: a custom [`ScheduleSource`] observes every control
//! hand-off and supplies worker ticks, and delaying sends perturbs timing
//! without breaking the protocol.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use oml_core::ids::NodeId;
use oml_runtime::wire::{WireReader, WireWriter};
use oml_runtime::{Cluster, MobileObject, ScheduleSource, SendAction};

/// A counter whose state survives linearization.
struct Counter(u64);

impl MobileObject for Counter {
    fn type_tag(&self) -> &'static str {
        "counter"
    }
    fn invoke(&mut self, method: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        match method {
            "add" => {
                let mut r = WireReader::new(payload);
                self.0 += r.u64()?;
                Ok(WireWriter::new().u64(self.0).finish().to_vec())
            }
            other => Err(format!("no such method: {other}")),
        }
    }
    fn linearize(&self) -> Vec<u8> {
        WireWriter::new().u64(self.0).finish().to_vec()
    }
}

fn register_counter(cluster: &Cluster) {
    cluster.register_type("counter", |bytes| {
        let mut r = WireReader::new(bytes);
        Box::new(Counter(r.u64().expect("valid counter state")))
    });
}

fn add(cluster: &Cluster, obj: oml_core::ids::ObjectId, v: u64) -> u64 {
    let out = cluster
        .invoke(obj, "add", &WireWriter::new().u64(v).finish())
        .expect("add succeeds");
    WireReader::new(&out).u64().unwrap()
}

/// Counts every decision the runtime routes through the seam.
#[derive(Debug, Default)]
struct CountingSource {
    sends: AtomicU64,
    ticks: AtomicU64,
}

impl ScheduleSource for CountingSource {
    fn on_send(&self, _from: u32, _to: NodeId) -> SendAction {
        self.sends.fetch_add(1, Ordering::Relaxed);
        SendAction::Deliver
    }

    fn tick(&self, _node: NodeId) -> Duration {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        Duration::from_millis(5)
    }
}

/// Holds every control hand-off for a few milliseconds.
#[derive(Debug)]
struct DelayEverySend;

impl ScheduleSource for DelayEverySend {
    fn on_send(&self, _from: u32, _to: NodeId) -> SendAction {
        SendAction::Delay(Duration::from_millis(3))
    }
}

#[test]
fn counting_source_sees_sends_and_ticks() {
    let source = Arc::new(CountingSource::default());
    let cluster = Cluster::builder()
        .nodes(2)
        .schedule_source(Arc::clone(&source) as Arc<dyn ScheduleSource>)
        .build();
    register_counter(&cluster);
    let obj = cluster
        .create(NodeId::new(0), Box::new(Counter(0)))
        .expect("create");
    for i in 1..=4 {
        assert_eq!(add(&cluster, obj, 1), i);
    }
    let guard = cluster.move_block(obj, NodeId::new(1)).expect("move");
    assert!(guard.granted());
    assert_eq!(add(&cluster, obj, 1), 5);
    drop(guard);
    cluster.shutdown();
    // every invoke and the move-request crossed the seam at least once
    assert!(
        source.sends.load(Ordering::Relaxed) >= 5,
        "schedule source saw {} control sends, expected at least 5",
        source.sends.load(Ordering::Relaxed)
    );
    // workers polled at the source-supplied tick while idle
    assert!(
        source.ticks.load(Ordering::Relaxed) > 0,
        "schedule source was never asked for a tick"
    );
}

#[test]
fn delayed_sends_still_complete_operations() {
    let cluster = Cluster::builder()
        .nodes(2)
        .schedule_source(Arc::new(DelayEverySend))
        .build();
    register_counter(&cluster);
    let obj = cluster
        .create(NodeId::new(0), Box::new(Counter(0)))
        .expect("create");
    for i in 1..=3 {
        assert_eq!(add(&cluster, obj, 1), i);
    }
    let guard = cluster
        .move_block(obj, NodeId::new(1))
        .expect("move under delayed schedule");
    assert!(guard.granted());
    drop(guard);
    assert_eq!(add(&cluster, obj, 1), 4, "state survived the move");
    cluster.shutdown();
}
