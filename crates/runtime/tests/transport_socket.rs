//! Socket-transport integration tests: real TCP/Unix sockets, real
//! threads, the chaos proxy between them. Covers the satellite
//! requirements: reconnect after induced connection loss (with the
//! at-least-once redelivery of frames queued across the gap), the
//! stale-incarnation handshake refusal (fenced zombie — refused, traced,
//! terminal on the peer), and backpressure on the bounded outbound queue.

use bytes::Bytes;
use oml_runtime::transport::chaos_proxy::{FaultProxy, ProxyPlan};
use oml_runtime::transport::socket::{SocketConfig, SocketPeer, SocketServer};
use oml_runtime::transport::{LinkHealth, Transport, TransportError, TransportEvent};
use oml_runtime::TransportAddr;
use std::time::{Duration, Instant};

fn tcp0() -> TransportAddr {
    TransportAddr::parse("tcp:127.0.0.1:0").unwrap()
}

fn fast_cfg() -> SocketConfig {
    let mut cfg = SocketConfig::default();
    cfg.backoff.base_ms = 5;
    cfg.backoff.cap_ms = 50;
    cfg
}

/// Drains server events until a `Delivery` arrives or the deadline passes.
fn next_delivery(server: &SocketServer, deadline: Duration) -> Option<(u32, u64, Bytes)> {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if let Ok(TransportEvent::Delivery { from, epoch, msg }) =
            server.recv_timeout(0, Duration::from_millis(50))
        {
            return Some((from, epoch, msg));
        }
    }
    None
}

#[test]
fn round_trip_over_tcp() {
    let server = SocketServer::bind(&tcp0(), 1, fast_cfg()).unwrap();
    let peer = SocketPeer::connect(server.addr().clone(), 0, 1, fast_cfg());
    assert!(peer.wait_connected(Duration::from_secs(5)));

    peer.send(0, Bytes::copy_from_slice(b"ping")).unwrap();
    let (from, epoch, msg) = next_delivery(&server, Duration::from_secs(5)).expect("delivery");
    assert_eq!((from, epoch, msg.as_ref()), (0, 1, b"ping".as_slice()));

    // and the other direction
    server.send(0, Bytes::copy_from_slice(b"pong")).unwrap();
    let until = Instant::now() + Duration::from_secs(5);
    let got = loop {
        assert!(Instant::now() < until, "no server->peer delivery");
        if let Ok(TransportEvent::Delivery { msg, .. }) =
            peer.recv_timeout(0, Duration::from_millis(50))
        {
            break msg;
        }
    };
    assert_eq!(got.as_ref(), b"pong");
    peer.shutdown();
    server.shutdown();
}

#[test]
fn reconnects_through_a_severed_proxy_and_redelivers() {
    let server = SocketServer::bind(&tcp0(), 1, fast_cfg()).unwrap();
    // fault-free proxy: we induce the outage explicitly with sever_all
    let proxy = FaultProxy::start(&tcp0(), server.addr().clone(), ProxyPlan::seeded(1)).unwrap();
    let peer = SocketPeer::connect(proxy.addr().clone(), 0, 1, fast_cfg());
    assert!(peer.wait_connected(Duration::from_secs(5)));

    peer.send(0, Bytes::copy_from_slice(b"before")).unwrap();
    let (_, _, msg) = next_delivery(&server, Duration::from_secs(5)).expect("pre-outage delivery");
    assert_eq!(msg.as_ref(), b"before");

    // outage: hard-close every forwarded connection; the supervisor must
    // redial through the (still listening) proxy under backoff
    proxy.sever_all();
    // wait until the peer has *detected* the outage — a frame handed to a
    // freshly-severed TCP connection can die in the kernel buffer (that
    // in-flight window belongs to the protocol layer's timeouts/retries);
    // the transport's at-least-once promise covers frames accepted while
    // the link is supervised-down
    let until = Instant::now() + Duration::from_secs(5);
    while peer.link_health(0) == LinkHealth::Up {
        assert!(
            Instant::now() < until,
            "peer never detected the severed link"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // a frame queued during the detected outage sits in the bounded outbox
    // until a session re-forms, then flushes
    peer.send(0, Bytes::copy_from_slice(b"during")).unwrap();

    let mut saw_reconnect = false;
    let mut delivered_during = false;
    let until = Instant::now() + Duration::from_secs(10);
    while Instant::now() < until && !(saw_reconnect && delivered_during) {
        match server.recv_timeout(0, Duration::from_millis(50)) {
            Ok(TransportEvent::Reconnected {
                peer: p, attempt, ..
            }) => {
                assert_eq!(p, 0);
                assert!(attempt >= 1);
                saw_reconnect = true;
            }
            Ok(TransportEvent::Delivery { msg, .. }) if msg.as_ref() == b"during" => {
                delivered_during = true;
            }
            _ => {}
        }
    }
    assert!(saw_reconnect, "server never observed the reconnect");
    assert!(
        delivered_during,
        "frame sent during the outage was never redelivered"
    );
    assert!(
        peer.wait_connected(Duration::from_secs(1)),
        "peer should be reconnected"
    );
    peer.shutdown();
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn stale_incarnation_handshake_is_refused_and_traced() {
    let server = SocketServer::bind(&tcp0(), 1, fast_cfg()).unwrap();

    // incarnation 5 connects and works
    let live = SocketPeer::connect(server.addr().clone(), 0, 5, fast_cfg());
    assert!(live.wait_connected(Duration::from_secs(5)));
    assert_eq!(server.session_epoch(0), Some(5));

    // the node is declared dead and respawned as incarnation 6: fence 5
    server.fence_below(0, 6);

    // a zombie presenting the old incarnation must be refused at accept
    let zombie = SocketPeer::connect(server.addr().clone(), 0, 5, fast_cfg());
    let until = Instant::now() + Duration::from_secs(5);
    while !zombie.is_fenced() {
        assert!(Instant::now() < until, "zombie never observed the refusal");
        std::thread::sleep(Duration::from_millis(5));
    }
    // terminal on the zombie's side: sends fail fast with Fenced
    match zombie.send(0, Bytes::copy_from_slice(b"zombie write")) {
        Err(TransportError::Fenced { epoch, .. }) => assert_eq!(epoch, 5),
        other => panic!("expected Fenced, got {other:?}"),
    }

    // ...and traced on the acceptor's side
    let until = Instant::now() + Duration::from_secs(5);
    let mut saw_fence_event = false;
    while Instant::now() < until && !saw_fence_event {
        if let Ok(TransportEvent::HandshakeFenced { peer, epoch }) =
            server.recv_timeout(0, Duration::from_millis(50))
        {
            assert_eq!((peer, epoch), (0, 5));
            saw_fence_event = true;
        }
    }
    assert!(saw_fence_event, "acceptor never emitted HandshakeFenced");

    // the fresh incarnation connects fine (floors fence below, not at)
    let fresh = SocketPeer::connect(server.addr().clone(), 0, 6, fast_cfg());
    assert!(fresh.wait_connected(Duration::from_secs(5)));
    assert!(!fresh.is_fenced());

    live.shutdown();
    zombie.shutdown();
    fresh.shutdown();
    server.shutdown();
}

#[test]
fn full_outbound_queue_fails_with_backpressure() {
    // no server: the link stays down, so the bounded outbox fills
    let mut cfg = fast_cfg();
    cfg.outbound_capacity = 4;
    cfg.send_deadline_ms = 40;
    cfg.connect_timeout_ms = 50;
    let peer = SocketPeer::connect(
        TransportAddr::parse("tcp:127.0.0.1:1").unwrap(), // reserved port: refused
        0,
        1,
        cfg,
    );
    let payload = Bytes::copy_from_slice(b"queued");
    let mut backpressured = false;
    let start = Instant::now();
    for _ in 0..64 {
        match peer.send(0, payload.clone()) {
            Ok(()) => {}
            Err(TransportError::Backpressure { .. }) => {
                backpressured = true;
                break;
            }
            Err(other) => panic!("expected Backpressure, got {other:?}"),
        }
    }
    assert!(backpressured, "bounded outbox never pushed back");
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "send path must fail in bounded time, not block forever"
    );
    peer.shutdown();
}

#[test]
fn unix_domain_round_trip() {
    let dir = std::env::temp_dir().join(format!("oml-uds-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.sock");
    let addr = TransportAddr::parse(&format!("unix:{}", path.display())).unwrap();
    let server = SocketServer::bind(&addr, 1, fast_cfg()).unwrap();
    let peer = SocketPeer::connect(server.addr().clone(), 0, 1, fast_cfg());
    assert!(peer.wait_connected(Duration::from_secs(5)));
    peer.send(0, Bytes::copy_from_slice(b"uds")).unwrap();
    let (_, _, msg) = next_delivery(&server, Duration::from_secs(5)).expect("uds delivery");
    assert_eq!(msg.as_ref(), b"uds");
    peer.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
