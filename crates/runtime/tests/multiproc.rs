//! End-to-end multi-process chaos test: real worker OS processes over a
//! Unix-domain socket, a real SIGKILL mid-workload, recovery through the
//! coordinator's failure detector + checkpoint reinstantiation, and the
//! zombie negative control (a respawn presenting its old incarnation must
//! be refused at the socket accept). The collected trace is fed to
//! `oml_check::check_trace` at the end — the same invariants the
//! in-process chaos suites run under.
//!
//! Built with `harness = false`: the binary re-executes itself as the
//! worker processes (`WorkerOptions::from_env()` distinguishes the roles),
//! which libtest's argument parsing would reject.

use oml_runtime::transport::netio::TransportAddr;
use oml_runtime::transport::socket::SocketConfig;
use oml_runtime::{
    run_worker, FsyncPolicy, MobileObject, MultiProcCluster, MultiProcConfig, ProcHealth,
    RuntimeError, WorkerOptions,
};
use std::time::{Duration, Instant};

/// The test workload object: a counter whose state is its 8-byte value.
struct Counter(u64);

impl MobileObject for Counter {
    fn type_tag(&self) -> &'static str {
        "counter"
    }

    fn invoke(&mut self, method: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        match method {
            "add" => {
                self.0 += u64::from(payload.first().copied().unwrap_or(0));
                Ok(self.0.to_le_bytes().to_vec())
            }
            "get" => Ok(self.0.to_le_bytes().to_vec()),
            other => Err(format!("unknown method {other}")),
        }
    }

    fn linearize(&self) -> Vec<u8> {
        self.0.to_le_bytes().to_vec()
    }
}

fn delinearize_counter(state: &[u8]) -> Box<dyn MobileObject> {
    let mut bytes = [0u8; 8];
    let n = state.len().min(8);
    bytes[..n].copy_from_slice(&state[..n]);
    Box::new(Counter(u64::from_le_bytes(bytes)))
}

fn cfg(addr: TransportAddr) -> MultiProcConfig {
    let mut socket = SocketConfig::default();
    socket.backoff.base_ms = 5;
    socket.backoff.cap_ms = 100;
    MultiProcConfig {
        workers: 3,
        addr,
        call_timeout_ms: 500,
        heartbeat_ms: 25,
        suspect_after: 4,
        dead_after: 12,
        socket,
        worker_program: std::env::current_exe().expect("own path"),
        worker_args: Vec::new(),
        monitor: true,
        store_dir: None,
        fsync: FsyncPolicy::Always,
    }
}

fn value_of(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(b)
}

/// Retries an invoke through an outage window; panics if the cluster never
/// recovers (hangs are a test failure, not a wait).
fn invoke_until_ok(
    cluster: &MultiProcCluster,
    object: u32,
    method: &str,
    payload: &[u8],
    deadline: Duration,
) -> (Vec<u8>, u32) {
    let until = Instant::now() + deadline;
    let mut denials = 0;
    loop {
        match cluster.invoke(object, method, payload) {
            Ok(bytes) => return (bytes, denials),
            Err(RuntimeError::NodeDown(_) | RuntimeError::Timeout { .. }) => {
                denials += 1;
                assert!(
                    Instant::now() < until,
                    "cluster never recovered: {denials} consecutive denials"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(other) => panic!("unexpected invoke error: {other}"),
        }
    }
}

fn scenario() {
    let dir = std::env::temp_dir().join(format!("oml-mp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let addr = TransportAddr::Unix(dir.join("coord.sock"));
    let cluster = MultiProcCluster::spawn(cfg(addr)).expect("spawn cluster");
    assert!(
        cluster.wait_ready(Duration::from_secs(10)),
        "workers never heartbeat"
    );

    // ---- healthy phase: create, invoke, migrate between real processes
    cluster
        .create(0, 1, "counter", 0u64.to_le_bytes().to_vec())
        .expect("create");
    let (v, _) = invoke_until_ok(&cluster, 1, "add", &[5], Duration::from_secs(5));
    assert_eq!(value_of(&v), 5);
    cluster.migrate(1, 1).expect("migrate to worker 1");
    assert_eq!(cluster.location_of(1), Some(1));
    let (v, _) = invoke_until_ok(&cluster, 1, "add", &[7], Duration::from_secs(5));
    assert_eq!(value_of(&v), 12, "state travelled with the migration");

    // ---- chaos phase: SIGKILL the hosting worker mid-workload
    cluster.kill(1);
    let (v, denials) = invoke_until_ok(&cluster, 1, "add", &[1], Duration::from_secs(20));
    assert!(
        denials > 0,
        "a SIGKILLed host should deny at least one call before recovery"
    );
    // the checkpoint is at most one successful call behind: 12 (+1 now)
    assert_eq!(
        value_of(&v),
        13,
        "recovered state must come from the freshest checkpoint"
    );
    assert_eq!(cluster.health(1), ProcHealth::Dead);
    let home = cluster.location_of(1).expect("object re-homed");
    assert_ne!(home, 1, "object must have left the dead worker");
    let stats = cluster.stats();
    assert!(stats.declared_dead >= 1, "detector never declared death");
    assert!(stats.reinstantiated >= 1, "object never reinstantiated");

    // ---- recovery phase: respawn under a fresh incarnation
    cluster.respawn(1).expect("respawn");
    assert!(
        cluster.wait_ready(Duration::from_secs(10)),
        "respawned worker never heartbeat"
    );
    let (v, _) = invoke_until_ok(&cluster, 1, "get", &[], Duration::from_secs(5));
    assert_eq!(value_of(&v), 13);

    // ---- zombie negative control: the old incarnation must be fenced at
    // the socket accept, before a single payload frame is read
    cluster.respawn_zombie(1).expect("spawn zombie");
    let until = Instant::now() + Duration::from_secs(10);
    while cluster.stats().fenced_handshakes == 0 {
        assert!(Instant::now() < until, "zombie handshake was never refused");
        std::thread::sleep(Duration::from_millis(10));
    }
    // the live incarnation keeps working while the zombie is refused
    let (v, _) = invoke_until_ok(&cluster, 1, "add", &[2], Duration::from_secs(5));
    assert_eq!(value_of(&v), 15);

    // ---- every in-flight op resolved above (no hangs); now the trace must
    // satisfy the checker, including no-delivery-after-fenced-handshake
    let trace = cluster.take_trace();
    cluster.shutdown();
    let report = oml_check::check_trace(&trace);
    assert!(
        report.violations.is_empty(),
        "trace violations: {:?}",
        report.violations
    );
    assert!(
        trace
            .iter()
            .any(|e| matches!(e.kind, oml_check::event::EventKind::HandshakeFenced { .. })),
        "the refused zombie handshake must appear in the trace"
    );
    let _ = std::fs::remove_dir_all(&dir);
    println!("multiproc sigkill/recovery/zombie scenario: ok");
}

/// Coordinator-death scenario: with a durable store configured, abandon
/// the coordinator (no Shutdown protocol, no store flush, workers
/// SIGKILLed) and cold-start a successor from the WAL alone. Both objects
/// and their freshest checkpointed state must come back, and the combined
/// trace must satisfy the checker's durability invariants.
fn durable_scenario() {
    let dir = std::env::temp_dir().join(format!("oml-mp-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let store_dir = dir.join("store");
    let mut c = cfg(TransportAddr::Unix(dir.join("coord.sock")));
    c.store_dir = Some(store_dir.clone());
    let cluster = MultiProcCluster::spawn(c).expect("spawn durable cluster");
    assert!(
        cluster.wait_ready(Duration::from_secs(10)),
        "workers never heartbeat"
    );
    cluster
        .create(0, 1, "counter", 0u64.to_le_bytes().to_vec())
        .expect("create o1");
    cluster
        .create(1, 2, "counter", 0u64.to_le_bytes().to_vec())
        .expect("create o2");
    let (v, _) = invoke_until_ok(&cluster, 1, "add", &[9], Duration::from_secs(5));
    assert_eq!(value_of(&v), 9);
    let (v, _) = invoke_until_ok(&cluster, 2, "add", &[4], Duration::from_secs(5));
    assert_eq!(value_of(&v), 4);
    assert!(
        cluster.wal_stats().appended > 0,
        "durable store must have WAL appends"
    );
    let mut trace = cluster.take_trace();
    // the coordinator "dies" here: no graceful shutdown, no flush
    cluster.abandon();

    let mut c2 = cfg(TransportAddr::Unix(dir.join("coord2.sock")));
    c2.store_dir = Some(store_dir);
    let revived = MultiProcCluster::recover(c2, Duration::from_secs(10)).expect("cold restart");
    assert_eq!(
        revived.objects(),
        vec![1, 2],
        "every checkpointed object must be reinstantiated"
    );
    let (v, _) = invoke_until_ok(&revived, 1, "get", &[], Duration::from_secs(5));
    assert_eq!(value_of(&v), 9, "o1 state survived the coordinator death");
    let (v, _) = invoke_until_ok(&revived, 2, "get", &[], Duration::from_secs(5));
    assert_eq!(value_of(&v), 4, "o2 state survived the coordinator death");
    trace.extend(revived.take_trace());
    revived.shutdown();

    let report = oml_check::check_trace(&trace);
    assert!(
        report.violations.is_empty(),
        "trace violations: {:?}",
        report.violations
    );
    use oml_check::event::EventKind;
    assert!(
        trace
            .iter()
            .any(|e| matches!(e.kind, EventKind::WalAppended { durable: true, .. })),
        "durable appends must be visible to the checker"
    );
    assert!(
        trace
            .iter()
            .any(|e| matches!(e.kind, EventKind::ColdRecovered { .. })),
        "the cold recovery must be visible to the checker"
    );
    let _ = std::fs::remove_dir_all(&dir);
    println!("multiproc coordinator kill/cold-restart scenario: ok");
}

fn main() {
    // worker role: the coordinator re-executes this binary with OML_MP_*
    // set; run the worker loop and exit with it
    if let Some(opts) = WorkerOptions::from_env() {
        let _ = run_worker(&opts, &[("counter", delinearize_counter)]);
        return;
    }
    scenario();
    durable_scenario();
}
