//! Property tests for the wire encoding: any field sequence round-trips
//! exactly through [`WireWriter`]/[`WireReader`], and any truncation of the
//! encoded buffer is rejected with an error — never a panic, never a
//! silently wrong value.

use oml_runtime::wire::{WireReader, WireWriter};
use proptest::prelude::*;

/// One field of a payload, covering every writer/reader method pair.
#[derive(Debug, Clone)]
enum Field {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bytes(Vec<u8>),
}

impl Field {
    fn write(&self, w: WireWriter) -> WireWriter {
        match self {
            Field::U64(v) => w.u64(*v),
            Field::I64(v) => w.i64(*v),
            Field::F64(v) => w.f64(*v),
            Field::Str(s) => w.str(s),
            Field::Bytes(b) => w.bytes(b),
        }
    }

    /// Reads this field back and checks it matches; floats compare by bit
    /// pattern so every value (including signed zero) round-trips exactly.
    fn read_and_check(&self, r: &mut WireReader<'_>) -> Result<(), String> {
        match self {
            Field::U64(v) => assert_eq!(r.u64()?, *v),
            Field::I64(v) => assert_eq!(r.i64()?, *v),
            Field::F64(v) => assert_eq!(r.f64()?.to_bits(), v.to_bits()),
            Field::Str(s) => assert_eq!(&r.str()?, s),
            Field::Bytes(b) => assert_eq!(&r.bytes()?, b),
        }
        Ok(())
    }
}

fn field() -> impl Strategy<Value = Field> {
    prop_oneof![
        any::<u64>().prop_map(Field::U64),
        any::<i64>().prop_map(Field::I64),
        any::<f64>().prop_map(Field::F64),
        // multi-byte characters included so length prefixes (bytes) and
        // character counts genuinely disagree
        "[a-z0-9 éλ中]{0,24}".prop_map(Field::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Field::Bytes),
    ]
}

fn fields() -> impl Strategy<Value = Vec<Field>> {
    proptest::collection::vec(field(), 1..12)
}

fn encode(fields: &[Field]) -> Vec<u8> {
    fields
        .iter()
        .fold(WireWriter::new(), |w, f| f.write(w))
        .finish()
        .to_vec()
}

proptest! {
    /// Every field sequence decodes to exactly what was written, with no
    /// bytes left over.
    #[test]
    fn field_sequences_round_trip(fields in fields()) {
        let bytes = encode(&fields);
        let mut r = WireReader::new(&bytes);
        for f in &fields {
            f.read_and_check(&mut r).expect("intact buffer decodes fully");
        }
        prop_assert!(r.is_empty(), "decoder must consume the whole buffer");
    }

    /// Decoding a strict prefix of an encoding fails cleanly: some leading
    /// fields may decode (their bytes are intact), but the schema as a whole
    /// reports a truncation error rather than panicking or fabricating data.
    #[test]
    fn truncated_buffers_are_rejected(fields in fields(), cut_seed in any::<u64>()) {
        let bytes = encode(&fields);
        prop_assume!(!bytes.is_empty());
        let cut = (cut_seed % bytes.len() as u64) as usize; // strict prefix
        let mut r = WireReader::new(&bytes[..cut]);
        let mut failed = None;
        for f in &fields {
            if let Err(e) = f.read_and_check(&mut r) {
                failed = Some(e);
                break;
            }
        }
        let err = failed.expect("a strict prefix cannot satisfy the schema");
        prop_assert!(err.contains("truncated"), "unexpected error: {err}");
    }

    /// Length prefixes larger than the remaining buffer are truncation
    /// errors, not panics or fabricated bodies — even adversarial lengths
    /// far beyond any real payload.
    #[test]
    fn oversized_length_prefixes_are_rejected(
        len in 16u32..u32::MAX,
        tail in proptest::collection::vec(any::<u8>(), 0..8),
    ) {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&tail);
        let mut r = WireReader::new(&bytes);
        let err = r.bytes().expect_err("length overruns the buffer");
        prop_assert!(err.contains("truncated body"), "unexpected error: {err}");
    }
}
