//! Every long-lived lock in oml-runtime must be a *named* `OrderedMutex` /
//! `OrderedRwLock` so the lock-order analyzer sees its acquisitions. This
//! test scans the crate's sources for raw `parking_lot` constructions and
//! fails on any outside the reviewed allowlist — a new raw lock must either
//! be converted or explicitly allowlisted here with a justification.

use std::fs;
use std::path::Path;

/// Files allowed to construct raw (unregistered) `parking_lot` locks, with
/// the reviewed reason each is safe to keep off the analyzer's graph.
const ALLOWLIST: &[(&str, &str)] = &[
    // the Ordered wrappers themselves are built on raw parking_lot locks
    (
        "trace.rs",
        "OrderedMutex/OrderedRwLock implementation + the trace collector's leaf mutex",
    ),
    // the injector's decision tables are leaves locked for a few loads each,
    // never while any Ordered lock is held
    ("fault.rs", "fault-injector internal leaf locks"),
    // the type registry is populated before workers start and read-locked
    // as a leaf afterwards
    ("object.rs", "type-registry leaf RwLock"),
    // transport-internal leaf locks (peer slots, fencing floors, thread
    // handles): held for map lookups only, never while any Ordered lock or
    // another transport lock is held
    ("socket.rs", "socket transport leaf locks"),
    // coordinator state + trace collector: two leaves, always acquired
    // state-then-trace or independently, never interleaved with Ordered
    // locks (the multiprocess runtime does not use the in-process Cluster)
    ("multiproc.rs", "multi-process coordinator leaf locks"),
    // the proxy's live-connection table, locked to register/sever streams
    ("chaos_proxy.rs", "fault-proxy connection-table leaf lock"),
];

#[test]
fn all_long_lived_locks_are_registered() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut offenders = Vec::new();
    scan(&src, &mut offenders);
    assert!(
        offenders.is_empty(),
        "raw parking_lot lock constructions outside the allowlist — convert \
         them to OrderedMutex/OrderedRwLock (crate::trace) or allowlist them \
         with a justification:\n{}",
        offenders.join("\n")
    );
}

fn scan(dir: &Path, offenders: &mut Vec<String>) {
    for entry in fs::read_dir(dir).expect("source dir readable") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            scan(&path, offenders);
            continue;
        }
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf-8 file name");
        if ALLOWLIST.iter().any(|(f, _)| *f == name) {
            continue;
        }
        let text = fs::read_to_string(&path).expect("source readable");
        for (i, line) in text.lines().enumerate() {
            let trimmed = line.trim_start();
            if trimmed.starts_with("//") {
                continue;
            }
            // raw construction sites; Ordered wrappers call these from
            // trace.rs, which is allowlisted above
            let raw = ["Mutex::new(", "RwLock::new("]
                .iter()
                .any(|pat| match line.find(pat) {
                    // `OrderedMutex::new(` contains `Mutex::new(` — only the
                    // unprefixed form is an offender
                    Some(pos) => !line[..pos].ends_with("Ordered"),
                    None => false,
                });
            if raw || line.contains("parking_lot::Mutex<") || line.contains("parking_lot::RwLock<")
            {
                offenders.push(format!("{}:{}: {}", path.display(), i + 1, line.trim()));
            }
        }
    }
}
