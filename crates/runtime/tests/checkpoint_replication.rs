//! Quorum-replicated checkpoint tests: replica placement and health,
//! correlated host+home failures, ack deduplication under duplicated
//! checkpoint traffic, anti-entropy repair, the negative-testing hooks the
//! `oml-check` replication invariants exist to catch, and an epoch
//! monotonicity property over random crash/restart/declare-dead
//! interleavings.

use std::time::Duration;

use oml_check::{check_trace, EventKind, Violation};
use oml_core::ids::{NodeId, ObjectId};
use oml_core::policy::PolicyKind;
use oml_runtime::wire::{WireReader, WireWriter};
use oml_runtime::{Cluster, ClusterBuilder, FaultPlan, MobileObject, RuntimeError};
use proptest::prelude::*;

struct Counter(u64);

impl MobileObject for Counter {
    fn type_tag(&self) -> &'static str {
        "counter"
    }
    fn invoke(&mut self, method: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        match method {
            "add" => {
                let mut r = WireReader::new(payload);
                self.0 += r.u64()?;
                Ok(WireWriter::new().u64(self.0).finish().to_vec())
            }
            "get" => Ok(WireWriter::new().u64(self.0).finish().to_vec()),
            other => Err(format!("no such method: {other}")),
        }
    }
    fn linearize(&self) -> Vec<u8> {
        WireWriter::new().u64(self.0).finish().to_vec()
    }
}

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn register_counter(cluster: &Cluster) {
    cluster.register_type("counter", |bytes| {
        let mut r = WireReader::new(bytes);
        Box::new(Counter(r.u64().expect("valid counter state")))
    });
}

const HEARTBEAT_MS: u64 = 50;
const K_MISSED: u32 = 3;
const DETECTION_MS: u64 = HEARTBEAT_MS * K_MISSED as u64 + HEARTBEAT_MS;

fn builder(nodes: u32) -> ClusterBuilder {
    Cluster::builder()
        .nodes(nodes)
        .policy(PolicyKind::TransientPlacement)
        .call_timeout(Duration::from_millis(200))
        .invoke_retries(1)
        .lease_ms(1_000)
        .manual_clock()
        .failure_detector(HEARTBEAT_MS, K_MISSED)
}

/// Retries `get` until the async reinstantiation install drains.
fn eventual_get(cluster: &Cluster, obj: ObjectId) -> u64 {
    for _ in 0..500 {
        if let Ok(out) = cluster.invoke(obj, "get", &[]) {
            return WireReader::new(&out).u64().expect("counter payload");
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("{obj} never became invocable again");
}

/// Polls `checkpoint_health` until `pred` holds for `obj`.
fn await_health(
    cluster: &Cluster,
    obj: ObjectId,
    pred: impl Fn(&oml_runtime::CheckpointHealth) -> bool,
) {
    for _ in 0..500 {
        if cluster
            .checkpoint_health()
            .iter()
            .any(|h| h.object == obj && pred(h))
        {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!(
        "{obj} health never converged: {:?}",
        cluster.checkpoint_health()
    );
}

/// A granted-and-ended move block is a consistency point: `handle_end`
/// refreshes the replicated checkpoint with the object's current state.
fn refresh_via_block(cluster: &Cluster, obj: ObjectId, at: NodeId) {
    let guard = cluster.move_block(obj, at).expect("move block");
    assert!(guard.granted());
    drop(guard);
}

// --- satellite: restart_node on a running node ----------------------------

#[test]
fn restarting_a_running_node_is_refused() {
    let cluster = Cluster::builder()
        .nodes(2)
        .policy(PolicyKind::TransientPlacement)
        .build();
    assert_eq!(
        cluster.restart_node(n(1)),
        Err(RuntimeError::NotDead(n(1))),
        "a live worker must not be silently respawned"
    );
    assert_eq!(
        cluster.restart_node(n(7)),
        Err(RuntimeError::UnknownNode(n(7)))
    );
    // a genuinely crashed node still restarts
    cluster.crash_node(n(1)).unwrap();
    cluster.restart_node(n(1)).expect("dead nodes restart");
    cluster.shutdown();
}

// --- satellite: checkpoint health exposure --------------------------------

#[test]
fn checkpoint_health_tracks_replicas_age_and_quorum() {
    let cluster = builder(3).replication(2).build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(7))).unwrap();

    // creation seeds the replica set synchronously: k copies, no quorum yet
    let health = cluster.checkpoint_health();
    assert_eq!(health.len(), 1);
    assert_eq!(health[0].object, obj);
    assert_eq!(health[0].replicas, 2);
    assert_eq!(health[0].quorum, None);

    let set = cluster.replica_set(obj).expect("replicated object");
    assert_eq!(set.len(), 2);
    assert_eq!(set[0], n(0), "placement is home-preferred");

    // age ticks with the (manual) clock until the next refresh
    cluster.advance_clock(500);
    assert!(cluster.checkpoint_health()[0].refresh_age_ms >= 500);

    // an ended block refreshes; the quorum of acks lands asynchronously
    refresh_via_block(&cluster, obj, n(0));
    await_health(&cluster, obj, |h| h.quorum.is_some() && h.replicas == 2);

    let stats = cluster.stats();
    assert!(stats.checkpoint_refreshes >= 1);
    assert!(stats.quorum_refreshes >= 1);
    assert_eq!(stats.quorum_refresh_failures, 0);
    cluster.shutdown();
}

// --- tentpole: correlated host+home failure -------------------------------

/// With `k = 2` an object survives its host and its home (the old single
/// checkpoint holder) dying in the same detector sweep, as long as the host
/// is outside the replica set — the second replica promotes its copy.
#[test]
fn host_and_home_double_crash_survives_with_k2() {
    let cluster = builder(4).replication(2).trace().build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(7))).unwrap();

    let set = cluster.replica_set(obj).expect("replicated object");
    assert_eq!(set[0], n(0));
    let survivor = set[1];
    // host the object away from both replicas
    let host = (0..4)
        .map(n)
        .find(|cand| !set.contains(cand))
        .expect("4 nodes, 2 replicas");
    refresh_via_block(&cluster, obj, host);

    let out = cluster
        .invoke(obj, "add", &WireWriter::new().u64(5).finish())
        .unwrap();
    assert_eq!(WireReader::new(&out).u64().unwrap(), 12);

    // capture the post-add state in a quorum-acked refresh: with two
    // targets the quorum is both of them, so the survivor holds 12
    refresh_via_block(&cluster, obj, host);
    await_health(&cluster, obj, |h| h.quorum >= Some((0, 3)));

    // host and home die in the same sweep — the correlated failure that
    // loses the object under the old single-home-checkpoint design
    cluster.crash_node(host).unwrap();
    cluster.crash_node(n(0)).unwrap();
    cluster.advance_clock(DETECTION_MS);
    cluster.detector_sweep();

    assert_eq!(eventual_get(&cluster, obj), 12);
    assert_eq!(cluster.object_epoch(obj), 1);
    assert!(cluster.stats().reinstantiations >= 1);
    let resident = cluster.location_of(obj).expect("recovered somewhere");
    assert!(resident != host && resident != n(0));
    let _ = survivor;

    cluster.shutdown();
    let report = check_trace(&cluster.take_trace());
    assert!(report.is_clean(), "{report}");
}

/// `k = 1` reproduces the old behaviour — and demonstrably loses the object
/// when host and home die together, because the home held the only copy.
#[test]
fn k1_loses_the_object_on_host_home_double_crash() {
    let cluster = builder(4).replication(1).build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(7))).unwrap();
    assert_eq!(cluster.replica_set(obj).unwrap(), vec![n(0)]);

    refresh_via_block(&cluster, obj, n(2)); // host off the replica set
    cluster.crash_node(n(2)).unwrap();
    cluster.crash_node(n(0)).unwrap();
    cluster.advance_clock(DETECTION_MS);
    cluster.detector_sweep();

    // every copy died with the home: nothing could be reinstantiated
    assert_eq!(cluster.stats().reinstantiations, 0);
    assert!(
        cluster.invoke(obj, "get", &[]).is_err(),
        "the object should be unreachable — its only checkpoint is gone"
    );
    cluster.shutdown();
}

/// With `k = 3`, killing all but one member of the replica set (host and
/// home included) still recovers the object from the last survivor.
#[test]
fn replica_set_minus_one_survives_with_k3() {
    let cluster = builder(4).replication(3).trace().build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(7))).unwrap();

    let set = cluster.replica_set(obj).expect("replicated object");
    assert_eq!(set.len(), 3);
    let out = cluster
        .invoke(obj, "add", &WireWriter::new().u64(5).finish())
        .unwrap();
    assert_eq!(WireReader::new(&out).u64().unwrap(), 12);
    refresh_via_block(&cluster, obj, n(0));
    await_health(&cluster, obj, |h| h.quorum.is_some());

    // kill the host/home and one more replica: one replica remains
    cluster.crash_node(set[0]).unwrap();
    cluster.crash_node(set[1]).unwrap();
    cluster.advance_clock(DETECTION_MS);
    cluster.detector_sweep();

    // the object survives; its value is the survivor's copy, which the
    // quorum rule only guarantees up to the lost-update window
    let value = eventual_get(&cluster, obj);
    assert!(
        value == 12 || value == 7,
        "recovered a phantom value {value}"
    );
    assert_eq!(cluster.object_epoch(obj), 1);

    cluster.shutdown();
    let report = check_trace(&cluster.take_trace());
    assert!(report.is_clean(), "{report}");
}

// --- satellite: anti-entropy repair ---------------------------------------

#[test]
fn repair_sweep_restores_the_replication_factor() {
    let cluster = builder(3).replication(2).trace().build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(7))).unwrap();
    let set = cluster.replica_set(obj).unwrap();
    let second = set[1];

    // the second replica dies; the object itself stays live at its home
    cluster.crash_node(second).unwrap();
    cluster.advance_clock(DETECTION_MS);
    cluster.detector_sweep();

    // the sweep's anti-entropy pass re-replicates onto the remaining node
    await_health(&cluster, obj, |h| h.replicas == 2);
    assert!(cluster.stats().repairs >= 1);
    let healed = cluster.replica_set(obj).unwrap();
    assert!(!healed.contains(&second), "the dead node left the set");

    cluster.shutdown();
    let report = check_trace(&cluster.take_trace());
    assert!(report.is_clean(), "{report}");
}

/// Negative control: with repair disabled the deficit persists, and the
/// checker's `ReplicationFactorViolation` invariant catches it.
#[test]
fn no_repair_deficit_is_flagged_by_the_checker() {
    let cluster = builder(3).replication(2).no_repair().trace().build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(7))).unwrap();
    let second = cluster.replica_set(obj).unwrap()[1];

    cluster.crash_node(second).unwrap();
    cluster.advance_clock(DETECTION_MS);
    cluster.detector_sweep();

    assert_eq!(cluster.checkpoint_health()[0].replicas, 1);
    cluster.shutdown();
    let report = check_trace(&cluster.take_trace());
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ReplicationFactorViolation { .. })),
        "an unrepaired deficit must be flagged: {report}"
    );
}

// --- freshness: quorum rule vs. promotion ---------------------------------

/// Builds the divergence scenario: n2 misses the post-add refresh behind a
/// partition, so the surviving replicas disagree — n1 holds the
/// quorum-acked 12, n2 the stale 7 — and then the host+home n0 dies.
fn diverged_cluster(stale_promotion: bool) -> (Cluster, ObjectId) {
    let mut b = builder(3).replication(3).trace();
    if stale_promotion {
        b = b.stale_promotion();
    }
    let cluster = b.build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(7))).unwrap();
    refresh_via_block(&cluster, obj, n(0));
    await_health(&cluster, obj, |h| h.quorum >= Some((0, 1)));

    cluster.partition(n(0), n(2)).unwrap();
    let out = cluster
        .invoke(obj, "add", &WireWriter::new().u64(5).finish())
        .unwrap();
    assert_eq!(WireReader::new(&out).u64().unwrap(), 12);
    // quorum is 2 of 3: the host's own store plus n1 carry it even though
    // n2's copy silently drowned in the partition
    refresh_via_block(&cluster, obj, n(0));
    await_health(&cluster, obj, |h| h.quorum >= Some((0, 2)));

    cluster.crash_node(n(0)).unwrap();
    cluster.advance_clock(DETECTION_MS);
    cluster.detector_sweep();
    (cluster, obj)
}

#[test]
fn promotion_prefers_the_freshest_surviving_replica() {
    let (cluster, obj) = diverged_cluster(false);
    assert_eq!(
        eventual_get(&cluster, obj),
        12,
        "the quorum-acked write survives"
    );
    cluster.shutdown();
    let report = check_trace(&cluster.take_trace());
    assert!(report.is_clean(), "{report}");
}

/// Negative control: promoting the stalest survivor loses the quorum-acked
/// write, and the checker's `StaleReplicaPromoted` invariant catches it.
#[test]
fn stale_promotion_is_flagged_by_the_checker() {
    let (cluster, obj) = diverged_cluster(true);
    assert_eq!(eventual_get(&cluster, obj), 7, "the stale copy won");
    cluster.shutdown();
    let report = check_trace(&cluster.take_trace());
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::StaleReplicaPromoted { .. })),
        "a lost quorum-acked write must be flagged: {report}"
    );
}

// --- satellite: ack dedupe under duplicated checkpoint traffic ------------

#[test]
fn duplicated_checkpoint_traffic_is_deduplicated() {
    let cluster = builder(3)
        .replication(3)
        .faults(FaultPlan::seeded(0xD17).checkpoint_faults(0.0, 1.0))
        .trace()
        .build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(7))).unwrap();

    // two refresh rounds, every put and ack delivered twice; quiesce
    // between rounds so each write's full (duplicated) ack set drains
    refresh_via_block(&cluster, obj, n(0));
    await_health(&cluster, obj, |h| h.quorum >= Some((0, 1)));
    refresh_via_block(&cluster, obj, n(0));
    await_health(&cluster, obj, |h| h.quorum >= Some((0, 2)));

    cluster.shutdown();
    let trace = cluster.take_trace();

    // each (object, epoch, seq, replica) ack is counted at most once, and
    // a duplicated put (same version) is never re-applied by a store
    let mut acks = std::collections::HashSet::new();
    let mut stores = std::collections::HashSet::new();
    for ev in &trace {
        match &ev.kind {
            EventKind::CheckpointAcked {
                object,
                object_epoch,
                seq,
                replica,
                ..
            } => assert!(
                acks.insert((*object, *object_epoch, *seq, *replica)),
                "double-counted ack from {replica}"
            ),
            EventKind::CheckpointStored {
                object,
                replica,
                object_epoch,
                seq,
            } => assert!(
                stores.insert((*object, *replica, *object_epoch, *seq)),
                "duplicated put re-applied at {replica}"
            ),
            _ => {}
        }
    }
    assert!(!acks.is_empty());
    assert_eq!(cluster.stats().quorum_refresh_failures, 0);
    let report = check_trace(&trace);
    assert!(report.is_clean(), "{report}");
}

// --- property: object epochs are monotone ---------------------------------

#[derive(Debug, Clone)]
enum ChaosOp {
    Crash(u32),
    Restart(u32),
    Sweep,
    Invoke,
    Move(u32),
}

fn chaos_ops(nodes: u32) -> impl Strategy<Value = Vec<ChaosOp>> {
    let op = prop_oneof![
        (0..nodes).prop_map(ChaosOp::Crash),
        (0..nodes).prop_map(ChaosOp::Restart),
        Just(ChaosOp::Sweep),
        Just(ChaosOp::Invoke),
        (0..nodes).prop_map(ChaosOp::Move),
    ];
    proptest::collection::vec(op, 1..30)
}

proptest! {
    /// Across arbitrary interleavings of crashes, restarts, declare-dead
    /// sweeps and migrations, an object's epoch never moves backwards.
    #[test]
    fn object_epochs_are_monotone_under_chaos(script in chaos_ops(3)) {
        let cluster = builder(3).replication(2).build();
        register_counter(&cluster);
        let obj = cluster.create(n(0), Box::new(Counter(0))).unwrap();
        let mut last = cluster.object_epoch(obj);
        for op in script {
            match op {
                ChaosOp::Crash(node) => {
                    let _ = cluster.crash_node(n(node));
                }
                ChaosOp::Restart(node) => match cluster.restart_node(n(node)) {
                    Ok(_) | Err(RuntimeError::NotDead(_)) => {}
                    Err(other) => panic!("restart n{node}: {other}"),
                },
                ChaosOp::Sweep => {
                    cluster.advance_clock(DETECTION_MS);
                    cluster.detector_sweep();
                }
                ChaosOp::Invoke => {
                    let _ = cluster.invoke(obj, "add", &WireWriter::new().u64(1).finish());
                }
                ChaosOp::Move(node) => {
                    if let Ok(guard) = cluster.move_block(obj, n(node)) {
                        drop(guard);
                    }
                }
            }
            let epoch = cluster.object_epoch(obj);
            prop_assert!(
                epoch >= last,
                "epoch moved backwards: {last} -> {epoch} after {op:?}"
            );
            last = epoch;
        }
        cluster.shutdown();
    }
}
