//! Recovery chaos harness: seeded crash / partition / zombie-restart
//! schedules driven against clusters with the failure detector enabled.
//!
//! The scenarios mirror the acceptance criteria of the recovery subsystem:
//! a crashed node that never restarts must not strand its objects (they are
//! reinstantiated from home checkpoints within the detection window), calls
//! to a suspected or dead node must fail fast with `NodeDown` instead of
//! burning the full call timeout, a zombie restart under a stale incarnation
//! must be fenced out (and, without fencing, must be *caught* by the
//! checker's stale-incarnation invariant), and the whole schedule must stay
//! replayable under the same seed.

use std::time::{Duration, Instant};

use oml_check::check_trace;
use oml_core::ids::{NodeId, ObjectId};
use oml_core::policy::PolicyKind;
use oml_runtime::wire::{WireReader, WireWriter};
use oml_runtime::{Cluster, FaultPlan, MobileObject, NodeHealth, RuntimeError};

struct Counter(u64);

impl MobileObject for Counter {
    fn type_tag(&self) -> &'static str {
        "counter"
    }
    fn invoke(&mut self, method: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        match method {
            "add" => {
                let mut r = WireReader::new(payload);
                self.0 += r.u64()?;
                Ok(WireWriter::new().u64(self.0).finish().to_vec())
            }
            "get" => Ok(WireWriter::new().u64(self.0).finish().to_vec()),
            other => Err(format!("no such method: {other}")),
        }
    }
    fn linearize(&self) -> Vec<u8> {
        WireWriter::new().u64(self.0).finish().to_vec()
    }
}

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn register_counter(cluster: &Cluster) {
    cluster.register_type("counter", |bytes| {
        let mut r = WireReader::new(bytes);
        Box::new(Counter(r.u64().expect("valid counter state")))
    });
}

const HEARTBEAT_MS: u64 = 50;
const K_MISSED: u32 = 3;
/// Advancing past `K_MISSED * HEARTBEAT_MS` guarantees the next sweep sees
/// the crashed node as silent for the whole detection window.
const DETECTION_MS: u64 = HEARTBEAT_MS * K_MISSED as u64 + HEARTBEAT_MS;

fn get(cluster: &Cluster, obj: ObjectId) -> u64 {
    let out = cluster.invoke(obj, "get", &[]).expect("get must succeed");
    WireReader::new(&out).u64().expect("counter payload")
}

/// The tentpole scenario: crash a node and never restart it. Every client
/// op must still complete — stranded objects reinstantiate at their homes'
/// checkpoints within the detection window, and calls routed at the dead
/// node fail fast with `NodeDown` instead of timing out.
#[test]
fn crash_without_restart_completes_all_ops() {
    let cluster = Cluster::builder()
        .nodes(3)
        .policy(PolicyKind::TransientPlacement)
        .call_timeout(Duration::from_millis(200))
        .invoke_retries(1)
        .lease_ms(1_000)
        .manual_clock()
        .failure_detector(HEARTBEAT_MS, K_MISSED)
        .trace()
        .build();
    register_counter(&cluster);

    let a = cluster.create(n(0), Box::new(Counter(1))).unwrap();
    let b = cluster.create(n(1), Box::new(Counter(2))).unwrap();
    let c = cluster.create(n(2), Box::new(Counter(7))).unwrap();

    // an acknowledged add *after* the checkpoint was taken: its effect is
    // allowed to be lost on failover (the checkpoint freshness contract)
    let out = cluster
        .invoke(c, "add", &WireWriter::new().u64(5).finish())
        .unwrap();
    assert_eq!(WireReader::new(&out).u64().unwrap(), 12);

    cluster.crash_node(n(2)).unwrap();
    cluster.advance_clock(DETECTION_MS);
    cluster.detector_sweep();

    // the detector declared the silent node dead and recovered its object
    assert_eq!(cluster.node_health(n(2)), Some(NodeHealth::Dead));
    let stats = cluster.stats();
    assert_eq!(stats.reinstantiations, 1, "exactly one stranded object");
    let new_home = cluster.location_of(c).expect("object must stay placed");
    assert_ne!(new_home, n(2), "the dead node cannot host the fresh copy");

    // every client op completes; the recovered object answers from its
    // checkpoint (value 7 — the post-checkpoint add is legitimately lost)
    assert_eq!(get(&cluster, a), 1);
    assert_eq!(get(&cluster, b), 2);
    assert_eq!(get(&cluster, c), 7, "checkpoint state, not lost update");
    for _ in 0..5 {
        cluster
            .invoke(c, "add", &WireWriter::new().u64(1).finish())
            .unwrap();
    }
    assert_eq!(get(&cluster, c), 12, "the recovered object is fully live");

    // calls addressed at the dead node fail fast: no 200 ms timeout burn
    let started = Instant::now();
    let err = cluster.create(n(2), Box::new(Counter(0))).unwrap_err();
    let elapsed = started.elapsed();
    assert!(
        matches!(err, RuntimeError::NodeDown(node) if node == n(2)),
        "{err}"
    );
    assert!(
        elapsed < Duration::from_millis(100),
        "fail-fast must not wait out the call timeout (took {elapsed:?})"
    );

    let stats = cluster.stats();
    assert!(stats.breaker_opens >= 1, "death must open the breaker");
    assert_eq!(stats.fenced_stale, 0, "no zombie traffic in this schedule");
    cluster.shutdown();
    let report = check_trace(&cluster.take_trace());
    assert!(report.is_clean(), "{report}");
}

/// Suspicion (from a partition) opens the circuit breaker even though the
/// client's own links still work; healing clears the suspicion, counts it
/// as false, and the half-open probe closes the breaker again.
#[test]
fn suspicion_fails_fast_and_heals_without_false_death() {
    let cluster = Cluster::builder()
        .nodes(3)
        .policy(PolicyKind::TransientPlacement)
        .call_timeout(Duration::from_millis(200))
        .invoke_retries(0)
        .manual_clock()
        .failure_detector(HEARTBEAT_MS, K_MISSED)
        .trace()
        .build();
    register_counter(&cluster);
    let obj = cluster.create(n(2), Box::new(Counter(3))).unwrap();
    assert_eq!(get(&cluster, obj), 3);

    cluster.partition(n(1), n(2)).unwrap();
    cluster.detector_sweep();
    assert_eq!(cluster.node_health(n(1)), Some(NodeHealth::Suspected));
    assert_eq!(cluster.node_health(n(2)), Some(NodeHealth::Suspected));

    // the workers still beat (the partition exempts nothing but control
    // forwards), yet the breaker refuses the call without touching the wire
    let started = Instant::now();
    let err = cluster.invoke(obj, "get", &[]).unwrap_err();
    assert!(
        matches!(err, RuntimeError::NodeDown(node) if node == n(2)),
        "{err}"
    );
    assert!(started.elapsed() < Duration::from_millis(100));

    cluster.heal(n(1), n(2)).unwrap();
    cluster.detector_sweep();
    assert_eq!(cluster.node_health(n(1)), Some(NodeHealth::Up));
    assert_eq!(cluster.node_health(n(2)), Some(NodeHealth::Up));

    // the half-open probe goes through and the object never moved
    assert_eq!(get(&cluster, obj), 3);
    let stats = cluster.stats();
    assert_eq!(
        stats.false_suspicions, 2,
        "both sides were wrongly suspected"
    );
    assert_eq!(stats.reinstantiations, 0, "a live node keeps its objects");
    assert!(stats.breaker_opens >= 2);
    cluster.shutdown();
    let report = check_trace(&cluster.take_trace());
    assert!(report.is_clean(), "{report}");
}

/// Restarts a node and waits until the detector admits it back — a fenced
/// zombie exits asynchronously, so the first restart attempts may find the
/// old worker still winding down.
fn restart_until_up(cluster: &Cluster, node: NodeId) {
    for _ in 0..500 {
        match cluster.restart_node(node) {
            // NotDead: the previous incarnation's worker is still winding
            // down (or the restart already took) — poll health and retry
            Ok(_) | Err(RuntimeError::NotDead(_)) => {}
            Err(other) => panic!("restart {node}: {other}"),
        }
        if cluster.node_health(node) == Some(NodeHealth::Up) {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("{node} never came back up");
}

/// A zombie restart under the stale incarnation is fenced out: it must not
/// reclaim the stashed object the cluster already reinstantiated elsewhere.
/// A subsequent honest restart rejoins under a fresh epoch and coexists
/// with the recovered object.
#[test]
fn fenced_zombie_cannot_double_install() {
    let cluster = Cluster::builder()
        .nodes(3)
        .policy(PolicyKind::TransientPlacement)
        .call_timeout(Duration::from_millis(200))
        .invoke_retries(1)
        .manual_clock()
        .failure_detector(HEARTBEAT_MS, K_MISSED)
        .trace()
        .build();
    register_counter(&cluster);
    let obj = cluster.create(n(2), Box::new(Counter(9))).unwrap();

    cluster.crash_node(n(2)).unwrap();
    cluster.advance_clock(DETECTION_MS);
    cluster.detector_sweep();
    assert_eq!(cluster.node_health(n(2)), Some(NodeHealth::Dead));
    let recovered_at = cluster.location_of(obj).expect("reinstantiated");
    assert_ne!(recovered_at, n(2));

    // the zombie spawns under its crashed incarnation, notices the fence
    // and exits without touching the stash or the directory
    cluster.zombie_restart_node(n(2)).unwrap();
    assert_eq!(
        cluster.node_health(n(2)),
        Some(NodeHealth::Dead),
        "a stale incarnation cannot talk its way back to life"
    );

    // the honest restart (reaping the finished zombie) rejoins cleanly
    restart_until_up(&cluster, n(2));
    assert_eq!(
        cluster.location_of(obj),
        Some(recovered_at),
        "the restarted node must not reclaim a reinstantiated object"
    );
    assert_eq!(get(&cluster, obj), 9);
    // and the node itself is fully usable again
    let fresh = cluster.create(n(2), Box::new(Counter(1))).unwrap();
    assert_eq!(get(&cluster, fresh), 1);

    cluster.shutdown();
    let report = check_trace(&cluster.take_trace());
    assert!(report.is_clean(), "{report}");
}

/// Negative control: the same zombie schedule with fencing disabled *does*
/// double-install — and the checker's stale-incarnation invariant flags it.
/// This proves the fence is load-bearing, not vacuously green.
#[test]
fn unfenced_zombie_is_caught_by_the_checker() {
    let cluster = Cluster::builder()
        .nodes(3)
        .policy(PolicyKind::TransientPlacement)
        .call_timeout(Duration::from_millis(200))
        .invoke_retries(1)
        .manual_clock()
        .failure_detector(HEARTBEAT_MS, K_MISSED)
        .unfenced()
        .trace()
        .build();
    register_counter(&cluster);
    let obj = cluster.create(n(2), Box::new(Counter(9))).unwrap();

    cluster.crash_node(n(2)).unwrap();
    cluster.advance_clock(DETECTION_MS);
    cluster.detector_sweep();
    let recovered_at = cluster.location_of(obj).expect("reinstantiated");
    assert_ne!(recovered_at, n(2));

    // without the fence the zombie happily reclaims its stashed copy — a
    // second live replica behind the fresh one's back. The reclaim happens
    // before the zombie's receive loop, so the shutdown join below orders
    // it into the trace deterministically.
    cluster.zombie_restart_node(n(2)).unwrap();
    cluster.shutdown();
    let report = check_trace(&cluster.take_trace());
    assert!(
        !report.is_clean(),
        "the checker must flag the double-install"
    );
    let rendered = report.to_string();
    assert!(
        rendered.contains("stale incarnation"),
        "expected a stale-incarnation violation, got: {rendered}"
    );
}

/// The crash → reinstantiate → restart race: after the detector recovered
/// an object elsewhere, restarting the original host must not move it back,
/// must not corrupt its state, and must leave a clean trace.
#[test]
fn crash_recover_restart_keeps_single_residency() {
    let cluster = Cluster::builder()
        .nodes(3)
        .policy(PolicyKind::TransientPlacement)
        .call_timeout(Duration::from_millis(200))
        .invoke_retries(1)
        .lease_ms(1_000)
        .manual_clock()
        .failure_detector(HEARTBEAT_MS, K_MISSED)
        .trace()
        .build();
    register_counter(&cluster);
    let obj = cluster.create(n(2), Box::new(Counter(4))).unwrap();

    cluster.crash_node(n(2)).unwrap();
    cluster.advance_clock(DETECTION_MS);
    cluster.detector_sweep();
    let recovered_at = cluster.location_of(obj).expect("reinstantiated");
    assert_ne!(recovered_at, n(2));
    assert_eq!(get(&cluster, obj), 4, "checkpoint state restored");

    restart_until_up(&cluster, n(2));
    assert_eq!(
        cluster.location_of(obj),
        Some(recovered_at),
        "the epoch filter must discard the restarted node's stale stash"
    );
    // mutate through the recovered copy, then migrate it back to the
    // restarted node: normal protocol traffic must work end to end
    cluster
        .invoke(obj, "add", &WireWriter::new().u64(6).finish())
        .unwrap();
    {
        let guard = cluster.move_block(obj, n(2)).unwrap();
        assert!(guard.granted());
        assert_eq!(get(&cluster, obj), 10);
    }
    assert_eq!(cluster.location_of(obj), Some(n(2)));

    assert_eq!(cluster.stats().reinstantiations, 1);
    cluster.shutdown();
    let report = check_trace(&cluster.take_trace());
    assert!(report.is_clean(), "{report}");
}

/// What one recovery chaos run leaves behind — everything that must be
/// identical across two runs with the same seed.
#[derive(Debug, PartialEq)]
struct RunRecord {
    trace: Vec<String>,
    finals: Vec<u64>,
    reinstantiations: u64,
    errors: Vec<(u64, String)>,
}

/// A seeded lossy schedule with a mid-run crash, a detection sweep, and a
/// late restart — the detector's decisions ride the manual clock, so the
/// whole run (fault trace, errors, final state) must replay bit-identically.
fn run_recovery_chaos(seed: u64) -> RunRecord {
    let plan = FaultPlan::seeded(seed)
        .drop_probability(0.05)
        .delay_probability(0.05, 2);
    let cluster = Cluster::builder()
        .nodes(3)
        .policy(PolicyKind::TransientPlacement)
        .faults(plan)
        .call_timeout(Duration::from_millis(100))
        .invoke_retries(2)
        .lease_ms(1_000)
        .manual_clock()
        .failure_detector(HEARTBEAT_MS, K_MISSED)
        .build();
    register_counter(&cluster);
    let objects: Vec<ObjectId> = (0..3)
        .map(|i| cluster.create(n(i), Box::new(Counter(0))).unwrap())
        .collect();

    let mut errors: Vec<(u64, String)> = Vec::new();
    for i in 0..30u64 {
        match i {
            10 => cluster.crash_node(n(2)).unwrap(),
            12 => {
                cluster.advance_clock(DETECTION_MS);
                cluster.detector_sweep();
            }
            20 => restart_until_up(&cluster, n(2)),
            _ => {}
        }
        let obj = objects[(i % 3) as usize];
        match cluster.invoke(obj, "add", &WireWriter::new().u64(1).finish()) {
            Ok(_) => {}
            Err(e @ (RuntimeError::Timeout { .. } | RuntimeError::NodeDown(_))) => {
                errors.push((i, format!("invoke: {e}")));
            }
            Err(other) => panic!("op {i}: unexpected error {other}"),
        }
    }

    cluster.advance_clock(2_000);
    cluster.sweep_leases();
    let finals: Vec<u64> = objects
        .iter()
        .map(|&obj| {
            let mut value = None;
            for _ in 0..5 {
                if let Ok(out) = cluster.invoke(obj, "get", &[]) {
                    value = Some(WireReader::new(&out).u64().expect("counter payload"));
                    break;
                }
            }
            value.expect("object must stay reachable")
        })
        .collect();

    let record = RunRecord {
        trace: cluster.fault_trace(),
        finals,
        reinstantiations: cluster.stats().reinstantiations,
        errors,
    };
    cluster.shutdown();
    record
}

#[test]
fn same_seed_recovery_runs_are_identical() {
    let a = run_recovery_chaos(0xC0A5);
    let b = run_recovery_chaos(0xC0A5);

    // the schedule really exercised the recovery machinery…
    assert!(a.trace.iter().any(|l| l.contains("crash")), "{:?}", a.trace);
    assert!(
        a.trace.iter().any(|l| l.contains("declare-dead")),
        "{:?}",
        a.trace
    );
    assert!(
        a.trace.iter().any(|l| l.contains("restart")),
        "{:?}",
        a.trace
    );
    assert_eq!(a.reinstantiations, 1);

    // …and the run is reproducible down to the surfaced errors
    assert_eq!(a, b);
}
