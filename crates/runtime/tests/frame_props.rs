//! Property tests for the socket transport's length-prefixed framing:
//! batches of payloads round-trip exactly through any split of the byte
//! stream, truncation at **every** byte offset yields "no frame yet" or a
//! clean error (never a panic, never a wrong frame), and corrupting any
//! single byte of a frame is detected by the CRC — the properties the
//! multi-process runtime's correctness rests on once real kernels start
//! splitting writes.

use oml_runtime::transport::frame::{
    encode_batch, encode_frame, FrameConfig, FrameDecoder, FrameError, HEADER_LEN,
};
use proptest::prelude::*;

fn payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..96), 1..8)
}

/// Feeds `wire` to a fresh decoder in chunks of `chunk` bytes and returns
/// every decoded frame (panicking on frame errors — callers feed clean
/// streams here).
fn decode_in_chunks(wire: &[u8], chunk: usize) -> Vec<Vec<u8>> {
    let mut dec = FrameDecoder::new(FrameConfig::default());
    let mut out = Vec::new();
    for piece in wire.chunks(chunk.max(1)) {
        dec.extend(piece);
        while let Some(frame) = dec.next_frame().expect("clean stream decodes") {
            out.push(frame.to_vec());
        }
    }
    out
}

proptest! {
    /// Any batch round-trips through any chunking of the stream — including
    /// chunk boundaries that split headers, payloads, and batch boundaries.
    #[test]
    fn batches_round_trip_under_any_split(msgs in payloads(), chunk in 1usize..64) {
        let mut wire = Vec::new();
        encode_batch(msgs.iter().map(Vec::as_slice), &mut wire);
        let decoded = decode_in_chunks(&wire, chunk);
        prop_assert_eq!(decoded, msgs);
    }

    /// Truncating the stream at every byte offset never panics and never
    /// produces a frame that was not fully present: the decoder yields
    /// exactly the frames whose bytes are all inside the prefix.
    #[test]
    fn truncation_at_every_offset_is_safe(msgs in payloads()) {
        let mut wire = Vec::new();
        encode_batch(msgs.iter().map(Vec::as_slice), &mut wire);
        // frame k ends at the cumulative offset of frames 0..=k
        let mut ends = Vec::new();
        let mut acc = 0usize;
        for m in &msgs {
            acc += HEADER_LEN + m.len();
            ends.push(acc);
        }
        for cut in 0..=wire.len() {
            let mut dec = FrameDecoder::new(FrameConfig::default());
            dec.extend(&wire[..cut]);
            let mut got = 0usize;
            while let Some(frame) = dec.next_frame().expect("prefix of a clean stream") {
                prop_assert_eq!(frame.as_ref(), msgs[got].as_slice());
                got += 1;
            }
            let complete = ends.iter().filter(|&&e| e <= cut).count();
            prop_assert_eq!(got, complete, "cut at {} must yield exactly the complete frames", cut);
        }
    }

    /// Flipping any single bit of a frame is caught: either the CRC check
    /// fails, the length prefix is rejected as oversized, or (when the flip
    /// lands in the length prefix and shrinks it) the stream still never
    /// yields the original payload as-if-untouched.
    #[test]
    fn single_byte_corruption_never_passes_silently(
        msg in proptest::collection::vec(any::<u8>(), 1..64),
        pos_seed in any::<u32>(),
        bit in 0u8..8,
    ) {
        let mut wire = Vec::new();
        encode_frame(&msg, &mut wire);
        let pos = pos_seed as usize % wire.len();
        wire[pos] ^= 1 << bit;
        let mut dec = FrameDecoder::new(FrameConfig::default());
        dec.extend(&wire);
        match dec.next_frame() {
            // corruption detected — the connection would be torn down
            Err(FrameError::Corrupt { .. } | FrameError::TooLarge { .. }) => {}
            // a shrunken length prefix can leave the decoder waiting for
            // more bytes, or re-frame the stream — but the original payload
            // must not come back unchanged
            Ok(None) => {}
            Ok(Some(frame)) => prop_assert_ne!(frame.as_ref(), msg.as_slice()),
        }
    }

    /// The corrupt-length case specifically: an attacker-controlled (or
    /// garbage) length prefix above the cap is rejected *before* the
    /// decoder buffers or waits for that much data.
    #[test]
    fn oversized_length_prefixes_fail_fast(extra in 1u32..1024) {
        let cfg = FrameConfig::default();
        let bad_len = cfg.max_frame + extra;
        let mut wire = bad_len.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 4]); // any crc
        let mut dec = FrameDecoder::new(cfg);
        dec.extend(&wire);
        prop_assert!(matches!(dec.next_frame(), Err(FrameError::TooLarge { .. })));
    }
}
