//! Every filesystem operation in the checkpoint store must live in
//! `store/fsio.rs`, behind the [`Storage`] trait — that is what lets the
//! chaos suites swap in the seeded `FaultFs` and prove torn writes,
//! skipped fsyncs, and bit flips are handled, and what keeps the WAL's
//! error paths honest: a filesystem error must surface as a
//! `StoreError`, never a panic. This test is the `transport_deadlines.rs`
//! rule extended to disks: it scans `src/store/` and fails on any
//! `std::fs` usage outside the boundary file, and on any bare
//! `.unwrap()`/`.expect()` in non-test store code — fs results included.

use std::fs;
use std::path::Path;

/// The one file allowed to touch `std::fs`: every operation there is a
/// small total wrapper returning `io::Result`, reviewed as a unit.
const IO_BOUNDARY: &str = "fsio.rs";

/// Raw filesystem access: naming the types is already a smell outside the
/// boundary, whether or not a call follows.
const FORBIDDEN_FS: &[&str] = &[
    "std::fs",
    "File::",
    "OpenOptions",
    "fs::read",
    "fs::write",
    "fs::rename",
    "fs::remove",
    "fs::create_dir",
];

fn store_sources() -> Vec<std::path::PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("src")
        .join("store");
    let mut out: Vec<_> = fs::read_dir(&dir)
        .expect("store source dir readable")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
        .collect();
    out.sort();
    out
}

/// The store modules keep their `#[cfg(test)] mod tests` at the end of the
/// file, so everything from that marker on is test-only code.
fn non_test_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .take_while(|(_, line)| !line.trim_start().starts_with("#[cfg(test)]"))
}

#[test]
fn fs_io_is_confined_to_fsio() {
    let mut offenders = Vec::new();
    for path in store_sources() {
        if path.file_name().and_then(|n| n.to_str()) == Some(IO_BOUNDARY) {
            continue;
        }
        let text = fs::read_to_string(&path).expect("source readable");
        for (i, line) in non_test_lines(&text) {
            if line.trim_start().starts_with("//") {
                continue;
            }
            if FORBIDDEN_FS.iter().any(|pat| line.contains(pat)) {
                offenders.push(format!("{}:{}: {}", path.display(), i + 1, line.trim()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "raw filesystem access outside store/fsio.rs — route it through the \
         `Storage` trait so FaultFs can reach it:\n{}",
        offenders.join("\n")
    );
}

#[test]
fn store_code_never_panics_on_results() {
    // a full disk, a yanked volume, or an injected fault must come back as
    // a StoreError the caller can act on — a panic in the store tears down
    // whatever thread was checkpointing
    let mut offenders = Vec::new();
    for path in store_sources() {
        let text = fs::read_to_string(&path).expect("source readable");
        for (i, line) in non_test_lines(&text) {
            if line.trim_start().starts_with("//") {
                continue;
            }
            if line.contains(".unwrap(") || line.contains(".expect(") {
                offenders.push(format!("{}:{}: {}", path.display(), i + 1, line.trim()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "bare unwrap/expect in non-test store code — propagate a StoreError \
         instead:\n{}",
        offenders.join("\n")
    );
}

#[test]
fn fsio_is_the_only_module_and_is_covered() {
    // the boundary file must actually exist under the scanned directory —
    // if it is ever renamed this test must fail loudly rather than scan
    // nothing and pass vacuously
    assert!(
        store_sources()
            .iter()
            .any(|p| p.file_name().and_then(|n| n.to_str()) == Some(IO_BOUNDARY)),
        "store/fsio.rs not found — update IO_BOUNDARY if the module moved"
    );
}
