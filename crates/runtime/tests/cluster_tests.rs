//! End-to-end tests of the threads-and-channels runtime.

use oml_core::attach::AttachmentMode;
use oml_core::ids::NodeId;
use oml_core::policy::PolicyKind;
use oml_runtime::wire::{WireReader, WireWriter};
use oml_runtime::{Cluster, MobileObject, RuntimeError};

/// A counter whose state survives linearization.
struct Counter(u64);

impl MobileObject for Counter {
    fn type_tag(&self) -> &'static str {
        "counter"
    }
    fn invoke(&mut self, method: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        match method {
            "add" => {
                let mut r = WireReader::new(payload);
                self.0 += r.u64()?;
                Ok(WireWriter::new().u64(self.0).finish().to_vec())
            }
            "get" => Ok(WireWriter::new().u64(self.0).finish().to_vec()),
            other => Err(format!("no such method: {other}")),
        }
    }
    fn linearize(&self) -> Vec<u8> {
        WireWriter::new().u64(self.0).finish().to_vec()
    }
}

fn register_counter(cluster: &Cluster) {
    cluster.register_type("counter", |bytes| {
        let mut r = WireReader::new(bytes);
        Box::new(Counter(r.u64().expect("valid counter state")))
    });
}

fn add(cluster: &Cluster, obj: oml_core::ids::ObjectId, v: u64) -> u64 {
    let out = cluster
        .invoke(obj, "add", &WireWriter::new().u64(v).finish())
        .expect("add succeeds");
    WireReader::new(&out).u64().unwrap()
}

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

#[test]
fn create_invoke_and_read_back() {
    let cluster = Cluster::builder().nodes(2).build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(0))).unwrap();
    assert_eq!(add(&cluster, obj, 5), 5);
    assert_eq!(add(&cluster, obj, 7), 12);
    assert!(cluster.is_resident(obj, n(0)));
    cluster.shutdown();
}

#[test]
fn unknown_method_surfaces_as_method_failed() {
    let cluster = Cluster::builder().nodes(1).build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(0))).unwrap();
    let err = cluster.invoke(obj, "frobnicate", &[]).unwrap_err();
    assert!(matches!(err, RuntimeError::MethodFailed { .. }));
    assert!(err.to_string().contains("frobnicate"));
}

#[test]
fn unknown_object_is_reported() {
    let cluster = Cluster::builder().nodes(1).build();
    let ghost = oml_core::ids::ObjectId::new(99);
    assert_eq!(
        cluster.invoke(ghost, "x", &[]).unwrap_err(),
        RuntimeError::UnknownObject(ghost)
    );
    assert_eq!(cluster.location_of(ghost), None);
}

#[test]
fn move_block_migrates_state_and_releases_on_drop() {
    let cluster = Cluster::builder()
        .nodes(3)
        .policy(PolicyKind::TransientPlacement)
        .build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(41))).unwrap();
    {
        let guard = cluster.move_block(obj, n(2)).unwrap();
        assert!(guard.granted());
        assert!(cluster.is_resident(obj, n(2)));
        // state survived the linearize/delinearize round trip
        assert_eq!(add(&cluster, obj, 1), 42);
    }
    // after the end-request the lock is free: another block may take it
    let guard = cluster.move_block(obj, n(1)).unwrap();
    assert!(guard.granted());
    assert!(cluster.is_resident(obj, n(1)));
}

#[test]
fn placement_denies_concurrent_movers() {
    let cluster = Cluster::builder()
        .nodes(3)
        .policy(PolicyKind::TransientPlacement)
        .build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(0))).unwrap();

    let first = cluster.move_block(obj, n(1)).unwrap();
    assert!(first.granted());

    // the conflicting mover is denied and the object stays put…
    let second = cluster.move_block(obj, n(2)).unwrap();
    assert!(!second.granted());
    assert!(cluster.is_resident(obj, n(1)));
    // …but its invocations still work (forwarded to the object)
    assert_eq!(add(&cluster, obj, 3), 3);
    drop(second); // denied end is ignored
    assert!(cluster.is_resident(obj, n(1)));

    drop(first);
    // lock released: now the move succeeds
    let third = cluster.move_block(obj, n(2)).unwrap();
    assert!(third.granted());
    assert!(cluster.is_resident(obj, n(2)));
}

#[test]
fn conventional_migration_always_grants() {
    let cluster = Cluster::builder()
        .nodes(3)
        .policy(PolicyKind::ConventionalMigration)
        .build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(0))).unwrap();
    let a = cluster.move_block(obj, n(1)).unwrap();
    assert!(a.granted());
    // the steal: conventional semantics let the second mover take it away
    let b = cluster.move_block(obj, n(2)).unwrap();
    assert!(b.granted());
    assert!(cluster.is_resident(obj, n(2)));
    // the first block's calls are now remote, but still correct
    assert_eq!(add(&cluster, obj, 1), 1);
}

#[test]
fn sedentary_policy_denies_moves() {
    let cluster = Cluster::builder()
        .nodes(2)
        .policy(PolicyKind::Sedentary)
        .build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(0))).unwrap();
    let guard = cluster.move_block(obj, n(1)).unwrap();
    assert!(!guard.granted());
    assert!(cluster.is_resident(obj, n(0)));
}

#[test]
fn fixed_objects_do_not_migrate() {
    let cluster = Cluster::builder()
        .nodes(2)
        .policy(PolicyKind::ConventionalMigration)
        .build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(0))).unwrap();
    cluster.fix(obj);
    assert!(!cluster.move_block(obj, n(1)).unwrap().granted());
    cluster.unfix(obj);
    assert!(cluster.move_block(obj, n(1)).unwrap().granted());
    cluster.refix(obj);
    assert!(!cluster.move_block(obj, n(0)).unwrap().granted());
}

#[test]
fn visit_blocks_return_home() {
    let cluster = Cluster::builder().nodes(2).build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(0))).unwrap();
    {
        let guard = cluster.visit_block(obj, n(1)).unwrap();
        assert!(guard.granted());
        assert!(cluster.is_resident(obj, n(1)));
        assert_eq!(add(&cluster, obj, 9), 9);
    }
    // home again, state intact
    assert!(cluster.is_resident(obj, n(0)));
    assert_eq!(add(&cluster, obj, 1), 10);
}

#[test]
fn attachments_drag_the_closure() {
    let cluster = Cluster::builder()
        .nodes(3)
        .policy(PolicyKind::ConventionalMigration)
        .build();
    register_counter(&cluster);
    let front = cluster.create(n(0), Box::new(Counter(1))).unwrap();
    let helper = cluster.create(n(1), Box::new(Counter(2))).unwrap();
    cluster.attach(helper, front, None).unwrap();

    let guard = cluster.move_block(front, n(2)).unwrap();
    assert!(guard.granted());
    drop(guard);
    assert!(cluster.is_resident(front, n(2)));
    // the attached helper was surrendered by its host and followed
    for _ in 0..100 {
        if cluster.is_resident(helper, n(2)) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(cluster.is_resident(helper, n(2)));
    // both objects still answer
    assert_eq!(add(&cluster, front, 0), 1);
    assert_eq!(add(&cluster, helper, 0), 2);
}

#[test]
fn a_transitive_closure_respects_the_context() {
    let cluster = Cluster::builder()
        .nodes(3)
        .policy(PolicyKind::ConventionalMigration)
        .attachment_mode(AttachmentMode::ATransitive)
        .build();
    register_counter(&cluster);
    let front = cluster.create(n(0), Box::new(Counter(0))).unwrap();
    let mine = cluster.create(n(0), Box::new(Counter(0))).unwrap();
    let foreign = cluster.create(n(0), Box::new(Counter(0))).unwrap();

    let us = cluster.create_alliance("us");
    let them = cluster.create_alliance("them");
    for o in [front, mine] {
        cluster.join_alliance(us, o).unwrap();
    }
    for o in [front, foreign] {
        cluster.join_alliance(them, o).unwrap();
    }
    cluster.attach(mine, front, Some(us)).unwrap();
    cluster.attach(foreign, front, Some(them)).unwrap();

    // moving in the `us` context drags `mine` but not `foreign`
    let guard = cluster.move_block_in(front, n(1), Some(us)).unwrap();
    assert!(guard.granted());
    drop(guard);
    assert!(cluster.is_resident(front, n(1)));
    assert!(cluster.is_resident(mine, n(1)));
    assert!(cluster.is_resident(foreign, n(0)));
}

#[test]
fn migration_without_registered_type_is_refused() {
    let cluster = Cluster::builder().nodes(2).build();
    // no register_type on purpose
    let obj = cluster.create(n(0), Box::new(Counter(7))).unwrap();
    let err = cluster.move_block(obj, n(1)).unwrap_err();
    assert_eq!(err, RuntimeError::UnknownType("counter".into()));
    // the object is unharmed and still invocable
    assert!(cluster.is_resident(obj, n(0)));
    assert_eq!(add(&cluster, obj, 1), 8);
}

#[test]
fn invalid_node_is_rejected() {
    let cluster = Cluster::builder().nodes(2).build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(0))).unwrap();
    assert_eq!(
        cluster.move_block(obj, n(9)).unwrap_err(),
        RuntimeError::UnknownNode(n(9))
    );
    assert!(matches!(
        cluster.create(n(9), Box::new(Counter(0))),
        Err(RuntimeError::UnknownNode(_))
    ));
}

#[test]
fn shutdown_is_idempotent_and_drop_safe() {
    let cluster = Cluster::builder().nodes(2).build();
    cluster.shutdown();
    cluster.shutdown();
    drop(cluster); // Drop's shutdown is a no-op
}

#[test]
fn proxy_handles_cover_the_primitives() {
    let cluster = Cluster::builder()
        .nodes(3)
        .policy(PolicyKind::TransientPlacement)
        .build();
    register_counter(&cluster);
    let id = cluster.create(n(0), Box::new(Counter(10))).unwrap();
    let helper_id = cluster.create(n(1), Box::new(Counter(0))).unwrap();

    let obj = cluster.object(id);
    let helper = cluster.object(helper_id);
    assert_eq!(obj.id(), id);
    assert_eq!(obj.location(), Some(n(0)));

    // invoke through the proxy
    let out = obj
        .invoke("add", &WireWriter::new().u64(5).finish())
        .unwrap();
    assert_eq!(WireReader::new(&out).u64().unwrap(), 15);

    // attach + move via proxies drags the helper
    helper.attach_to(obj, None).unwrap();
    {
        let g = obj.move_to(n(2)).unwrap();
        assert!(g.granted());
    }
    assert!(obj.is_resident(n(2)));
    for _ in 0..100 {
        if helper.is_resident(n(2)) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(helper.is_resident(n(2)));
    assert!(helper.detach_from(obj));

    // fixing via the proxy
    obj.fix();
    assert!(!obj.move_to(n(0)).unwrap().granted());
    obj.unfix();
    {
        let g = obj.visit(n(0)).unwrap();
        assert!(g.granted());
    }
    assert!(obj.is_resident(n(2)), "visit returned the object");
}

#[test]
fn concurrent_invocations_from_many_threads_are_consistent() {
    let cluster = std::sync::Arc::new(Cluster::builder().nodes(4).build());
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(0))).unwrap();

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let cluster = std::sync::Arc::clone(&cluster);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let _ = add(&cluster, obj, 1);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(add(&cluster, obj, 0), 400);
}

#[test]
fn call_by_move_and_visit_follow_the_declaration() {
    use oml_core::lang::OperationDecl;

    let cluster = Cluster::builder()
        .nodes(3)
        .policy(PolicyKind::ConventionalMigration)
        .build();
    register_counter(&cluster);
    // the callee (a scheduler) is fixed at node 2; two argument objects live
    // at nodes 0 and 1
    let scheduler = cluster.create(n(2), Box::new(Counter(0))).unwrap();
    cluster.fix(scheduler);
    let job = cluster.create(n(0), Box::new(Counter(0))).unwrap();
    let schedule = cluster.create(n(1), Box::new(Counter(0))).unwrap();

    // Fig. 1: declare assign: visit job, move schedule -> bool
    let decl: OperationDecl = "declare add: visit job, move schedule -> bool"
        .parse()
        .unwrap();
    let out = cluster
        .invoke_with_decl(
            scheduler,
            &decl,
            &[job, schedule],
            &WireWriter::new().u64(1).finish(),
        )
        .unwrap();
    assert_eq!(WireReader::new(&out).u64().unwrap(), 1);

    // the visit parameter went home; the move parameter stayed at the callee
    assert!(cluster.is_resident(job, n(0)), "visit returns");
    assert!(cluster.is_resident(schedule, n(2)), "move stays");
    assert!(cluster.is_resident(scheduler, n(2)));
}

#[test]
fn invoke_with_decl_checks_arity() {
    use oml_core::lang::OperationDecl;
    let cluster = Cluster::builder().nodes(2).build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(0))).unwrap();
    let decl: OperationDecl = "add: move x".parse().unwrap();
    assert_eq!(
        cluster.invoke_with_decl(obj, &decl, &[], &[]).unwrap_err(),
        RuntimeError::ArityMismatch {
            expected: 1,
            got: 0
        }
    );
}

#[test]
fn stats_track_activity() {
    let cluster = Cluster::builder()
        .nodes(3)
        .policy(PolicyKind::TransientPlacement)
        .build();
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(0))).unwrap();
    assert_eq!(cluster.stats().invocations, 0);
    let _ = add(&cluster, obj, 1);
    let _ = add(&cluster, obj, 1);
    {
        let g = cluster.move_block(obj, n(1)).unwrap();
        assert!(g.granted());
        let denied = cluster.move_block(obj, n(2)).unwrap();
        assert!(!denied.granted());
    }
    let s = cluster.stats();
    assert_eq!(s.invocations, 2);
    assert_eq!(s.moves_granted, 1);
    assert_eq!(s.moves_denied, 1);
    assert_eq!(s.objects_migrated, 1);
}

#[test]
fn snapshots_reflect_placement() {
    let cluster = Cluster::builder().nodes(3).build();
    register_counter(&cluster);
    let a = cluster.create(n(0), Box::new(Counter(0))).unwrap();
    let b_obj = cluster.create(n(1), Box::new(Counter(0))).unwrap();
    assert_eq!(cluster.occupancy(), vec![1, 1, 0]);
    {
        let g = cluster.move_block(a, n(2)).unwrap();
        assert!(g.granted());
    }
    let snap = cluster.placement_snapshot();
    assert_eq!(snap, vec![(a, n(2)), (b_obj, n(1))]);
    assert_eq!(cluster.occupancy(), vec![0, 1, 1]);
}

#[test]
fn concurrent_movers_never_lose_the_object() {
    let cluster = std::sync::Arc::new(
        Cluster::builder()
            .nodes(4)
            .policy(PolicyKind::ConventionalMigration)
            .build(),
    );
    register_counter(&cluster);
    let obj = cluster.create(n(0), Box::new(Counter(0))).unwrap();

    let movers: Vec<_> = (0..4)
        .map(|i| {
            let cluster = std::sync::Arc::clone(&cluster);
            std::thread::spawn(move || {
                for _ in 0..25 {
                    if let Ok(guard) = cluster.move_block(obj, n(i)) {
                        let _ = add(&cluster, obj, 1);
                        drop(guard);
                    }
                }
            })
        })
        .collect();
    for t in movers {
        t.join().unwrap();
    }
    // every increment survived every migration
    assert_eq!(add(&cluster, obj, 0), 100);
    assert!(cluster.location_of(obj).is_some());
}
