//! Chaos harness: a seeded fault schedule (message loss, delays,
//! duplicates, dropped end-requests, a partition, one crash/restart
//! cycle) driven against a live cluster, with invariants checked after
//! the system quiesces — and the whole run replayed under the same seed
//! to prove the fault schedule is reproducible.
//!
//! The client is sequential and the cluster uses the manual lease clock,
//! so every fault decision depends only on (seed, link, sequence
//! number): two runs with the same seed must observe byte-identical
//! fault traces and identical final object states.

use std::time::Duration;

use oml_core::ids::{NodeId, ObjectId};
use oml_core::policy::PolicyKind;
use oml_runtime::wire::{WireReader, WireWriter};
use oml_runtime::{Cluster, FaultPlan, MobileObject, RuntimeError};

struct Counter(u64);

impl MobileObject for Counter {
    fn type_tag(&self) -> &'static str {
        "counter"
    }
    fn invoke(&mut self, method: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        match method {
            "add" => {
                let mut r = WireReader::new(payload);
                self.0 += r.u64()?;
                Ok(WireWriter::new().u64(self.0).finish().to_vec())
            }
            "get" => Ok(WireWriter::new().u64(self.0).finish().to_vec()),
            other => Err(format!("no such method: {other}")),
        }
    }
    fn linearize(&self) -> Vec<u8> {
        WireWriter::new().u64(self.0).finish().to_vec()
    }
}

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

const NODES: u32 = 4;
const LEASE_MS: u64 = 1_000;
const OPS: u64 = 40;

/// What one chaos run leaves behind — everything that must be identical
/// across two runs with the same seed.
#[derive(Debug, PartialEq)]
struct RunRecord {
    trace: Vec<String>,
    finals: Vec<u64>,
    ok_adds: u64,
    errors: Vec<(u64, String)>,
}

/// Drives the seeded fault schedule and returns the run's record.
///
/// The schedule interleaves invocations and move-blocks over three
/// objects with a node-pair partition (healed later), one crash/restart
/// of node 2, and a 50 % chance of losing each end-request.
fn run_chaos(seed: u64) -> RunRecord {
    let plan = FaultPlan::seeded(seed)
        .drop_probability(0.08)
        .duplicate_probability(0.05)
        .delay_probability(0.10, 3)
        .drop_end_requests(0.5);
    let cluster = Cluster::builder()
        .nodes(NODES)
        .policy(PolicyKind::TransientPlacement)
        .faults(plan)
        .call_timeout(Duration::from_millis(100))
        .invoke_retries(2)
        .lease_ms(LEASE_MS)
        .manual_clock()
        .build();
    cluster.register_type("counter", |bytes| {
        let mut r = WireReader::new(bytes);
        Box::new(Counter(r.u64().expect("valid counter state")))
    });

    let objects: Vec<ObjectId> = (0..3)
        .map(|i| {
            cluster
                .create(n(i), Box::new(Counter(0)))
                .expect("creation is on the reliable channel")
        })
        .collect();

    let mut ok_adds = 0u64;
    let mut errors: Vec<(u64, String)> = Vec::new();
    for i in 0..OPS {
        let obj = objects[(i % 3) as usize];

        // phase changes at fixed schedule points keep the run replayable
        match i {
            10 => cluster.partition(n(0), n(1)).expect("valid nodes"),
            18 => cluster.heal(n(0), n(1)).expect("valid nodes"),
            22 => cluster.crash_node(n(2)).expect("crash joins the worker"),
            30 => cluster.restart_node(n(2)).expect("restart respawns it"),
            _ => {}
        }

        // every third op migrates first; its end-request may get lost,
        // leaving the placement lock to expire with the lease
        if i % 3 == 0 {
            match cluster.move_block(obj, n((i % u64::from(NODES)) as u32)) {
                Ok(guard) => drop(guard),
                Err(e) => errors.push((i, format!("move: {e}"))),
            }
        }

        match cluster.invoke(obj, "add", &WireWriter::new().u64(1).finish()) {
            Ok(_) => ok_adds += 1,
            Err(e @ (RuntimeError::Timeout { .. } | RuntimeError::ShuttingDown)) => {
                errors.push((i, format!("invoke: {e}")));
            }
            Err(other) => panic!("op {i}: unexpected error {other}"),
        }
    }

    // quiesce: heal everything, let every lease (including ones orphaned
    // by dropped end-requests or the crash) expire, and collect them
    cluster.heal_all();
    match cluster.restart_node(n(2)) {
        // the node usually came back at op 30 and is simply still running
        Ok(_) | Err(RuntimeError::NotDead(_)) => {}
        Err(other) => panic!("quiesce restart: {other}"),
    }
    cluster.advance_clock(2 * LEASE_MS);
    cluster.sweep_leases();

    // invariant: no leaked placement locks after expiry
    assert_eq!(cluster.held_locks(), vec![], "locks must not leak");

    // invariant: single residency — the directory holds each object
    // exactly once and the occupancy totals agree
    let snapshot = cluster.placement_snapshot();
    assert_eq!(snapshot.len(), objects.len());
    assert_eq!(
        cluster.occupancy().iter().sum::<usize>(),
        objects.len(),
        "every object lives on exactly one node"
    );

    // invariant: no permanently blocked or lost object — every one still
    // answers (reads retry through any residual scheduled loss)
    let mut finals = Vec::new();
    for &obj in &objects {
        let mut value = None;
        for _ in 0..5 {
            if let Ok(out) = cluster.invoke(obj, "get", &[]) {
                value = Some(WireReader::new(&out).u64().expect("counter payload"));
                break;
            }
        }
        finals.push(value.expect("object must stay reachable after healing"));
    }

    // invariant: at-least-once — every acknowledged add is in the state
    assert!(
        finals.iter().sum::<u64>() >= ok_adds,
        "acknowledged adds {ok_adds} exceed surviving state {finals:?}"
    );

    // invariant: counters are consistent with what the run observed
    let stats = cluster.stats();
    assert!(stats.invocations >= ok_adds);
    assert_eq!(
        stats.timeouts > 0,
        !errors.is_empty() || stats.retries > 0,
        "timeouts, retries and surfaced errors must tell one story"
    );

    let trace = cluster.fault_trace();
    cluster.shutdown();
    RunRecord {
        trace,
        finals,
        ok_adds,
        errors,
    }
}

#[test]
fn same_seed_chaos_runs_are_identical_and_recover() {
    let a = run_chaos(0xC0A5);
    let b = run_chaos(0xC0A5);

    // the schedule really injected faults…
    assert!(
        a.trace.iter().any(|l| l.starts_with("drop")),
        "no drops in {:?}",
        a.trace
    );
    assert!(
        a.trace
            .iter()
            .any(|l| l.starts_with("drop") && l.contains("End(")),
        "no dropped end-requests in {:?}",
        a.trace
    );
    assert!(a.trace.iter().any(|l| l.contains("crash")));
    assert!(a.trace.iter().any(|l| l.contains("restart")));

    // …and the two runs are indistinguishable: same fault events in the
    // same order, same surfaced errors, same surviving state
    assert_eq!(a, b);
}

#[test]
fn different_seeds_produce_different_schedules() {
    let a = run_chaos(1);
    let b = run_chaos(2);
    assert_ne!(a.trace, b.trace);
}

#[test]
fn partition_blocks_forwards_until_healed() {
    // no random faults at all — only a deterministic partition
    let cluster = Cluster::builder()
        .nodes(2)
        .policy(PolicyKind::ConventionalMigration)
        .call_timeout(Duration::from_millis(60))
        .invoke_retries(0)
        .build();
    cluster.register_type("counter", |bytes| {
        let mut r = WireReader::new(bytes);
        Box::new(Counter(r.u64().expect("valid counter state")))
    });
    let obj = cluster.create(n(0), Box::new(Counter(7))).unwrap();
    {
        let g = cluster.move_block(obj, n(1)).unwrap();
        assert!(g.granted());
    }

    // the partition severs n0<->n1 forwards, but the client's own links
    // are exempt, so direct routes keep working throughout
    cluster.partition(n(0), n(1)).unwrap();
    assert!(
        cluster.invoke(obj, "get", &[]).is_ok(),
        "direct route is up"
    );

    cluster.heal(n(0), n(1)).unwrap();
    let out = cluster.invoke(obj, "get", &[]).unwrap();
    assert_eq!(WireReader::new(&out).u64().unwrap(), 7);
    // both topology changes were recorded for replay diagnostics
    let trace = cluster.fault_trace();
    assert!(trace.iter().any(|l| l == "partition n0<->n1"), "{trace:?}");
    assert!(trace.iter().any(|l| l == "heal n0<->n1"), "{trace:?}");
    cluster.shutdown();
}

#[test]
fn crash_preserves_state_and_restart_recovers_it() {
    let cluster = Cluster::builder()
        .nodes(2)
        .call_timeout(Duration::from_millis(60))
        .invoke_retries(0)
        .build();
    cluster.register_type("counter", |bytes| {
        let mut r = WireReader::new(bytes);
        Box::new(Counter(r.u64().expect("valid counter state")))
    });
    let obj = cluster.create(n(1), Box::new(Counter(0))).unwrap();
    let out = cluster
        .invoke(obj, "add", &WireWriter::new().u64(5).finish())
        .unwrap();
    assert_eq!(WireReader::new(&out).u64().unwrap(), 5);

    cluster.crash_node(n(1)).unwrap();
    // the host is dead: the deadline fires instead of hanging forever
    let err = cluster.invoke(obj, "get", &[]).unwrap_err();
    assert!(matches!(err, RuntimeError::Timeout { .. }), "{err}");
    assert!(cluster.stats().timeouts > 0);

    cluster.restart_node(n(1)).unwrap();
    // the restarted worker reclaimed the stashed object, state intact
    let mut value = None;
    for _ in 0..50 {
        if let Ok(out) = cluster.invoke(obj, "get", &[]) {
            value = Some(WireReader::new(&out).u64().unwrap());
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(value, Some(5), "state must survive the crash");
    cluster.shutdown();
}
