//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`/`prop_filter`/`boxed`, range/tuple/string/`any` strategies,
//! `collection::vec`, `option::of`, `sample::select`, and the `proptest!`,
//! `prop_oneof!`, `prop_assert*!` and `prop_assume!` macros. Generation is
//! deterministic (seeded per test name), and failures report the generated
//! inputs; there is no shrinking.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

pub mod test_runner {
    /// Deterministic SplitMix64 source used for all generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test's name, deterministically.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name, mixed with a fixed session constant.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)` without modulo bias.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample an empty range");
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let x = self.next_u64();
                if x < zone {
                    return x % bound;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// How a single generated test case ended, when it did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assert*!` failed with this message.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        #[must_use]
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        #[must_use]
        pub fn reject(msg: String) -> Self {
            TestCaseError::Reject(msg)
        }
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    impl Config {
        /// A config that runs `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }
}

pub use test_runner::Config as ProptestConfig;
pub use test_runner::{TestCaseError, TestRng};

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true, retrying otherwise.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 10000 consecutive values",
            self.whence
        );
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit() as f32) * (self.end - self.start)
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only; the workspace never relies on NaN/inf inputs.
        (rng.unit() - 0.5) * 2.0e9
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+);)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
}

/// `&str` regex-lite strategies: `[class]{m,n}` with `a-z` ranges and
/// literal characters (the only shapes this workspace uses).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_charclass_pattern(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy: {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_charclass_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    if hi < lo {
        return None;
    }
    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            if b < a {
                return None;
            }
            for c in a..=b {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, lo, hi))
}

// ---------------------------------------------------------------------------
// Combinator modules
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Picks one of `items` uniformly at random.
    pub fn select<T: Clone + Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from an empty list");
        Select { items }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

/// The `prop::` alias module (as re-exported by the real prelude).
pub mod prop {
    pub use crate::{collection, option, sample};
}

pub mod strategy {
    pub use crate::{BoxedStrategy, Just, Map, Strategy, Union};
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts inside a `proptest!` body, reporting the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{:?}` == `{:?}`",
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)+);
            }
        }
    };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
            }
        }
    };
}

/// Rejects the current case (it is retried with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $( $(#[$attr:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __passed: u32 = 0;
                let mut __rejected: u32 = 0;
                while __passed < __config.cases {
                    let __vals = ( $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+ );
                    let __inputs = ::std::format!("{:?}", __vals);
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = {
                        let ( $($pat,)+ ) = __vals;
                        let mut __run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                        __run()
                    };
                    match __outcome {
                        ::std::result::Result::Ok(()) => {
                            __passed += 1;
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Reject(__why)) => {
                            __rejected += 1;
                            ::std::assert!(
                                __rejected < 4096,
                                "prop_assume!({}) rejected 4096 cases in {}",
                                __why,
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            ::std::panic!(
                                "proptest case failed: {}\n    inputs: {}",
                                __msg,
                                __inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Declares deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_parses() {
        let mut rng = crate::TestRng::for_test("string_pattern_parses");
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples(x in 3u32..9, (a, b) in (0usize..5, 1.0..2.0f64)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((1.0..2.0).contains(&b));
        }

        #[test]
        fn oneof_maps_and_vec(
            v in prop::collection::vec(prop_oneof![(0u32..4).prop_map(|n| n * 2), Just(99u32)], 1..20),
            opt in prop::option::of(0u32..3),
            pick in prop::sample::select(vec![10u8, 20, 30]),
        ) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&n| n == 99 || n % 2 == 0));
            if let Some(o) = opt {
                prop_assert!(o < 3);
            }
            prop_assert!([10u8, 20, 30].contains(&pick));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
