//! Offline stand-in for `serde_derive`.
//!
//! Nothing in this workspace serializes through serde at runtime — the
//! derives exist so type definitions keep their upstream-compatible
//! annotations. Both derives therefore accept the input (including
//! `#[serde(...)]` attributes) and expand to an empty token stream; the
//! `serde` shim crate provides blanket trait impls instead.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
