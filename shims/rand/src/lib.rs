//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal, API-compatible subset: the three core traits plus a
//! deterministic [`rngs::StdRng`] built on xoshiro256++ seeded via SplitMix64.
//! Only the surface actually consumed by the workspace is provided.

use std::ops::{Range, RangeInclusive};

/// Core infallible random-number generation.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range form accepted by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-sampled uniform draw from `[0, bound)`, free of modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // full u64 domain
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of an inferred type from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ seeded through SplitMix64.
    ///
    /// Not the algorithm the real `rand` uses for `StdRng`, but this
    /// workspace never relies on the exact stream — only on determinism,
    /// reproducibility, and reasonable statistical quality.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=4usize);
            assert!(y <= 4);
        }
    }
}
