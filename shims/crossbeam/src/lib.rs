//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel`'s unbounded and bounded MPMC channels — the
//! only part of crossbeam this workspace uses — implemented with a
//! `Mutex<VecDeque>` and a `Condvar`. Both halves are cloneable;
//! disconnection is tracked by reference-counting each side, exactly like
//! the real crate.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        capacity: Option<usize>,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned when all receivers have been dropped.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    pub enum TrySendError<T> {
        /// The channel is bounded and currently at capacity.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    /// Error returned when the channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl<T> std::error::Error for TrySendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for RecvTimeoutError {}

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            capacity,
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded MPMC channel holding at most `cap` messages.
    ///
    /// `send` blocks while the channel is full; `try_send` fails with
    /// [`TrySendError::Full`] instead. A capacity of zero is treated as one,
    /// since this shim has no rendezvous mode.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing if every receiver has been dropped.
        ///
        /// On a bounded channel this blocks until a slot frees up.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(cap) = self.inner.capacity {
                while q.len() >= cap {
                    if self.inner.receivers.load(Ordering::Acquire) == 0 {
                        drop(q);
                        return Err(SendError(value));
                    }
                    q = self.inner.ready.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            }
            q.push_back(value);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Enqueues `value` without blocking, failing if the channel is full
        /// or every receiver has been dropped.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(cap) = self.inner.capacity {
                if q.len() >= cap {
                    drop(q);
                    return Err(TrySendError::Full(value));
                }
            }
            q.push_back(value);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.notify_if_bounded();
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.notify_if_bounded();
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .inner
                    .ready
                    .wait_timeout(q, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Returns a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                drop(q);
                self.notify_if_bounded();
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        fn notify_if_bounded(&self) {
            if self.inner.capacity.is_some() {
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_after_all_senders_drop() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_to_no_receiver_fails() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
            drop(tx);
        }

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn bounded_try_send_reports_disconnected() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert!(matches!(tx.try_send(9), Err(TrySendError::Disconnected(9))));
        }

        #[test]
        fn bounded_send_blocks_until_recv_frees_a_slot() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap().unwrap();
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
