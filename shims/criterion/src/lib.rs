//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's benchmark sources compiling and runnable without
//! crates.io access. Each `bench_function` runs its routine a small fixed
//! number of timed iterations and prints the mean — no warmup, outlier
//! analysis, or HTML reports.

use std::fmt::Display;
use std::time::Instant;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter display.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Declared throughput of a benchmark, echoed in its report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Drives one benchmark routine.
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        let total = start.elapsed();
        println!(
            "    {} iters in {:?} ({:?}/iter)",
            self.iters,
            total,
            total / self.iters
        );
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed in the shim.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Records the declared throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        println!("  [{}] throughput: {t:?}", self.name);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("  [{}] {}", self.name, id.into().name);
        let mut b = Bencher { iters: 3 };
        f(&mut b);
        self
    }

    /// Runs one benchmark with an auxiliary input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("  [{}] {}", self.name, id.into().name);
        let mut b = Bencher { iters: 3 };
        f(&mut b, input);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }
}

/// Opaque-to-the-optimizer identity, re-exported for convenience.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
