//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std synchronization primitives behind parking_lot's API:
//! `lock()`/`read()`/`write()` return guards directly and a poisoned lock is
//! recovered transparently instead of surfacing a `Result` (parking_lot has
//! no poisoning at all, so recovering is the faithful translation).

use std::fmt;
use std::sync;

// parking_lot names its guard types publicly; wrappers that store a guard in
// a struct need them. std's guards are API-compatible for Deref/DerefMut.
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A readers-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
