//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable immutable buffer (`Arc<[u8]>` inside),
//! [`BytesMut`] a growable builder, and [`Buf`]/[`BufMut`] the reading and
//! writing traits — restricted to the little-endian accessors the workspace
//! wire format uses.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes {
            data: v.as_bytes().into(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty builder with `cap` bytes preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BytesMut")
            .field("len", &self.buf.len())
            .finish()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Write access to a byte buffer (little-endian subset).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access to a byte buffer (little-endian subset).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let v = f64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let mut b = BytesMut::new();
        b.put_u64_le(7);
        b.put_i64_le(-9);
        b.put_f64_le(1.5);
        b.put_u32_le(3);
        b.put_slice(b"abc");
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u64_le(), 7);
        assert_eq!(r.get_i64_le(), -9);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.get_u32_le(), 3);
        assert_eq!(r, b"abc");
    }

    #[test]
    fn bytes_equality_and_clone() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.clone(), b);
        assert_eq!(a, vec![1, 2, 3]);
        assert_eq!(&a[..2], &[1, 2][..]);
    }
}
