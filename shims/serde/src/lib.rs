//! Offline stand-in for `serde`.
//!
//! The workspace annotates its data types with `#[derive(Serialize,
//! Deserialize)]` for upstream compatibility but never serializes through
//! serde at runtime (scenario configs use a plain `key = value` text format,
//! wire payloads use `oml-runtime::wire`). The traits are therefore markers
//! with blanket impls, and the derives are no-ops from [`serde_derive`].

/// Marker for serializable types. Blanket-implemented for everything.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Blanket-implemented for everything.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker for owned-deserializable types. Blanket-implemented for everything.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
